//! The common interface all prediction models implement.

use crate::interner::UrlId;
use crate::stats::ModelStats;
use crate::tree::NodeId;
use serde::{Deserialize, Serialize};

/// One predicted next access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The URL the model expects to be requested next.
    pub url: UrlId,
    /// Conditional probability estimate in `(0, 1]`.
    pub prob: f64,
}

impl Prediction {
    /// Convenience constructor.
    pub fn new(url: UrlId, prob: f64) -> Self {
        Self { url, prob }
    }
}

/// Which model family a [`Predictor`] belongs to (used by configs, result
/// tables and the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Standard PPM with the given maximum branch height
    /// (`None` = unbounded, the paper's upper-bound configuration).
    Standard {
        /// Maximum branch height; `None` leaves branches unbounded.
        max_height: Option<u8>,
    },
    /// Longest-Repeating-Subsequence PPM.
    Lrs,
    /// Popularity-based PPM (the paper's contribution).
    Pb,
    /// First-order Markov baseline.
    Order1,
    /// Popularity-only Top-N baseline (Markatos & Chronaki).
    TopN {
        /// How many top documents are pushed.
        n: usize,
    },
}

impl ModelKind {
    /// Short human-readable label used in printed tables.
    pub fn label(&self) -> String {
        match self {
            ModelKind::Standard { max_height: None } => "PPM".to_owned(),
            ModelKind::Standard {
                max_height: Some(h),
            } => format!("{h}-PPM"),
            ModelKind::Lrs => "LRS-PPM".to_owned(),
            ModelKind::Pb => "PB-PPM".to_owned(),
            ModelKind::Order1 => "O1-Markov".to_owned(),
            ModelKind::TopN { n } => format!("Top-{n}"),
        }
    }
}

/// Usage bookkeeping a read-only prediction wants applied to the model.
///
/// Prediction itself never changes what a model would predict, but models
/// record which stored paths were exercised (the paper's *path utilization*
/// metric, Fig. 2) and how many predictions each mechanism emitted. Those
/// side effects are collected here by [`Predictor::predict_ro`] and played
/// back by [`Predictor::apply_usage`], so prediction can run on `&self` —
/// which is what lets the evaluation engine share one model across worker
/// threads and merge usage deterministically afterwards.
///
/// All effects are idempotent flag sets or saturating counters, so applying
/// a merged batch once is equivalent to applying each record as it happened.
#[derive(Debug, Clone, Default)]
pub struct PredictUsage {
    /// Tree nodes to flag used ([`crate::tree::Tree::mark_used`]).
    pub used_nodes: Vec<NodeId>,
    /// Tree nodes whose whole ancestor path is flagged used
    /// ([`crate::tree::Tree::mark_path_used`]).
    pub used_paths: Vec<NodeId>,
    /// Source URLs whose transition row was consulted (first-order Markov).
    pub used_urls: Vec<UrlId>,
    /// The model as a whole produced output (Top-N's single flag).
    pub touched: bool,
    /// Predictions emitted through PB-PPM special links.
    pub link_preds: u64,
    /// Predictions emitted through PB-PPM branch matching.
    pub branch_preds: u64,
    /// PB-PPM fingerprint groups that voted: `(bucket key, excluded
    /// extension)`, the extension being the raw [`UrlId`] widened to `u64`,
    /// or `u64::MAX` when nothing was excluded. The group's voters and
    /// their children are resolved back to node flags by
    /// [`crate::PbPpm`]'s `apply_usage` — recording a key here instead of
    /// the member nodes keeps the fast path free of per-member work, and
    /// since marking is idempotent the records deduplicate freely.
    pub used_groups: Vec<(u64, u64)>,
    /// Nodes whose *entire* child row voted (the frozen CSR vote of the
    /// standard/LRS serving path). Like [`Self::used_groups`], one record
    /// stands in for every member: `apply_usage` expands it back to
    /// per-child marks, keeping the hot predict loop free of per-child
    /// pushes.
    pub used_child_rows: Vec<NodeId>,
    /// Context matches answered through the hashed `ContextIndex` fast
    /// path. Plain counters so the predict path stays free of atomics; the
    /// engine folds them into the telemetry registry after the merge.
    pub index_fast: u64,
    /// Context matches answered by the retained reference scan (no index
    /// built, or a dirty bucket forced per-member verification).
    pub index_fallback: u64,
}

impl PredictUsage {
    /// Empties the record for reuse.
    pub fn clear(&mut self) {
        self.used_nodes.clear();
        self.used_paths.clear();
        self.used_urls.clear();
        self.touched = false;
        self.link_preds = 0;
        self.branch_preds = 0;
        self.used_groups.clear();
        self.used_child_rows.clear();
        self.index_fast = 0;
        self.index_fallback = 0;
    }

    /// Folds another record into this one.
    pub fn merge(&mut self, other: &PredictUsage) {
        self.used_nodes.extend_from_slice(&other.used_nodes);
        self.used_paths.extend_from_slice(&other.used_paths);
        self.used_urls.extend_from_slice(&other.used_urls);
        self.touched |= other.touched;
        self.link_preds += other.link_preds;
        self.branch_preds += other.branch_preds;
        self.used_groups.extend_from_slice(&other.used_groups);
        self.used_child_rows
            .extend_from_slice(&other.used_child_rows);
        self.index_fast += other.index_fast;
        self.index_fallback += other.index_fallback;
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.used_nodes.is_empty()
            && self.used_paths.is_empty()
            && self.used_urls.is_empty()
            && !self.touched
            && self.link_preds == 0
            && self.branch_preds == 0
            && self.used_groups.is_empty()
            && self.used_child_rows.is_empty()
            && self.index_fast == 0
            && self.index_fallback == 0
    }
}

/// A trainable next-URL prediction model.
///
/// ## Protocol
///
/// 1. call [`Predictor::train_session`] for every access session of the
///    training window (sessions come from `pbppm-trace`'s sessionizer);
/// 2. call [`Predictor::finalize`] once — LRS extraction and PB-PPM space
///    optimization happen here;
/// 3. call [`Predictor::predict`] for each request of the evaluation window
///    — or [`Predictor::predict_ro`] on a shared reference, applying the
///    collected [`PredictUsage`] later via [`Predictor::apply_usage`].
pub trait Predictor: Send + Sync {
    /// The model family.
    fn kind(&self) -> ModelKind;

    /// Trains on one access session (the URL sequence one client visited
    /// without a 30-minute gap). Empty sessions are ignored.
    fn train_session(&mut self, session: &[UrlId]);

    /// Finishes training. Must be called exactly once, after the last
    /// `train_session` and before the first `predict`.
    fn finalize(&mut self);

    /// Read-only prediction: like [`Predictor::predict`] but on `&self`,
    /// appending the usage bookkeeping to `usage` (never clearing it, so
    /// one record can accumulate a whole batch) instead of applying it.
    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage);

    /// Applies usage collected by [`Predictor::predict_ro`] calls. Records
    /// from several calls may be merged and applied once.
    fn apply_usage(&mut self, usage: &PredictUsage);

    /// Predicts the next URLs given `context`, the URLs of the current
    /// session so far (oldest first, current click last). Predictions are
    /// appended to `out` sorted by descending probability; `out` is cleared
    /// first. No probability threshold is applied here — thresholding is a
    /// prefetch-policy decision made by the caller.
    fn predict(&mut self, context: &[UrlId], out: &mut Vec<Prediction>) {
        let mut usage = PredictUsage::default();
        self.predict_ro(context, out, &mut usage);
        self.apply_usage(&usage);
    }

    /// Batched prediction: fills `outs[i]` with the predictions for
    /// `contexts[i]` (resizing `outs` to match), applying the accumulated
    /// usage once at the end. Semantically identical to calling
    /// [`Predictor::predict`] per context, with the per-call bookkeeping
    /// amortized.
    fn predict_many(&mut self, contexts: &[&[UrlId]], outs: &mut Vec<Vec<Prediction>>) {
        outs.resize_with(contexts.len(), Vec::new);
        outs.truncate(contexts.len());
        let mut usage = PredictUsage::default();
        for (&context, out) in contexts.iter().zip(outs.iter_mut()) {
            self.predict_ro(context, out, &mut usage);
        }
        self.apply_usage(&usage);
    }

    /// The frozen SoA/CSR arena this model serves from, if it has been
    /// finalized into one. Models without a frozen form (baselines,
    /// pre-finalize states) return `None`.
    fn frozen(&self) -> Option<&crate::frozen::FrozenTree> {
        None
    }

    /// The context-match strategy the adaptive selector picked at
    /// finalization, for telemetry. `None` before finalization and for
    /// models without a frozen serving path.
    fn match_strategy(&self) -> Option<crate::frozen::MatchStrategy> {
        None
    }

    /// The paper's space metric: number of URL nodes the model stores.
    fn node_count(&self) -> usize;

    /// Structural statistics snapshot.
    fn stats(&self) -> ModelStats;
}

/// Sorts predictions by descending probability (ties broken by URL id so
/// output order is deterministic) and truncates to `max`.
pub fn rank_predictions(out: &mut Vec<Prediction>, max: usize) {
    out.sort_by(|a, b| {
        b.prob
            .partial_cmp(&a.prob)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.url.cmp(&b.url))
    });
    // One URL can be suggested by several mechanisms (e.g. PB's branch match
    // and a special link); keep the highest-probability copy.
    let mut seen = crate::fxhash::FxHashSet::default();
    out.retain(|p| seen.insert(p.url));
    out.truncate(max);
}

/// [`rank_predictions`] for an input already distinct by URL — one frozen
/// CSR child row, whose keys are unique by construction. Skips the dedup
/// set (and its allocation); the `(prob desc, url asc)` key is a strict
/// total order on distinct URLs, so the unstable sort produces exactly the
/// ordering `rank_predictions` would.
pub(crate) fn rank_distinct_predictions(out: &mut [Prediction]) {
    out.sort_unstable_by(|a, b| {
        b.prob
            .partial_cmp(&a.prob)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.url.cmp(&b.url))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn labels() {
        assert_eq!(ModelKind::Standard { max_height: None }.label(), "PPM");
        assert_eq!(
            ModelKind::Standard {
                max_height: Some(3)
            }
            .label(),
            "3-PPM"
        );
        assert_eq!(ModelKind::Lrs.label(), "LRS-PPM");
        assert_eq!(ModelKind::Pb.label(), "PB-PPM");
    }

    #[test]
    fn rank_sorts_dedups_and_truncates() {
        let mut v = vec![
            Prediction::new(u(1), 0.5),
            Prediction::new(u(2), 0.9),
            Prediction::new(u(1), 0.7),
            Prediction::new(u(3), 0.1),
        ];
        rank_predictions(&mut v, 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].url, u(2));
        assert_eq!(v[1].url, u(1));
        assert_eq!(v[1].prob, 0.7); // higher-probability duplicate won
    }

    #[test]
    fn rank_breaks_probability_ties_by_url() {
        let mut v = vec![Prediction::new(u(9), 0.5), Prediction::new(u(1), 0.5)];
        rank_predictions(&mut v, 10);
        assert_eq!(v[0].url, u(1));
        assert_eq!(v[1].url, u(9));
    }
}
