//! The common interface all prediction models implement.

use crate::interner::UrlId;
use crate::stats::ModelStats;
use serde::{Deserialize, Serialize};

/// One predicted next access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The URL the model expects to be requested next.
    pub url: UrlId,
    /// Conditional probability estimate in `(0, 1]`.
    pub prob: f64,
}

impl Prediction {
    /// Convenience constructor.
    pub fn new(url: UrlId, prob: f64) -> Self {
        Self { url, prob }
    }
}

/// Which model family a [`Predictor`] belongs to (used by configs, result
/// tables and the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Standard PPM with the given maximum branch height
    /// (`None` = unbounded, the paper's upper-bound configuration).
    Standard {
        /// Maximum branch height; `None` leaves branches unbounded.
        max_height: Option<u8>,
    },
    /// Longest-Repeating-Subsequence PPM.
    Lrs,
    /// Popularity-based PPM (the paper's contribution).
    Pb,
    /// First-order Markov baseline.
    Order1,
    /// Popularity-only Top-N baseline (Markatos & Chronaki).
    TopN {
        /// How many top documents are pushed.
        n: usize,
    },
}

impl ModelKind {
    /// Short human-readable label used in printed tables.
    pub fn label(&self) -> String {
        match self {
            ModelKind::Standard { max_height: None } => "PPM".to_owned(),
            ModelKind::Standard {
                max_height: Some(h),
            } => format!("{h}-PPM"),
            ModelKind::Lrs => "LRS-PPM".to_owned(),
            ModelKind::Pb => "PB-PPM".to_owned(),
            ModelKind::Order1 => "O1-Markov".to_owned(),
            ModelKind::TopN { n } => format!("Top-{n}"),
        }
    }
}

/// A trainable next-URL prediction model.
///
/// ## Protocol
///
/// 1. call [`Predictor::train_session`] for every access session of the
///    training window (sessions come from `pbppm-trace`'s sessionizer);
/// 2. call [`Predictor::finalize`] once — LRS extraction and PB-PPM space
///    optimization happen here;
/// 3. call [`Predictor::predict`] for each request of the evaluation window.
///
/// `predict` takes `&mut self` because models record which tree paths were
/// exercised (the paper's *path utilization* metric); prediction never
/// changes what a model would predict.
pub trait Predictor: Send {
    /// The model family.
    fn kind(&self) -> ModelKind;

    /// Trains on one access session (the URL sequence one client visited
    /// without a 30-minute gap). Empty sessions are ignored.
    fn train_session(&mut self, session: &[UrlId]);

    /// Finishes training. Must be called exactly once, after the last
    /// `train_session` and before the first `predict`.
    fn finalize(&mut self);

    /// Predicts the next URLs given `context`, the URLs of the current
    /// session so far (oldest first, current click last). Predictions are
    /// appended to `out` sorted by descending probability; `out` is cleared
    /// first. No probability threshold is applied here — thresholding is a
    /// prefetch-policy decision made by the caller.
    fn predict(&mut self, context: &[UrlId], out: &mut Vec<Prediction>);

    /// The paper's space metric: number of URL nodes the model stores.
    fn node_count(&self) -> usize;

    /// Structural statistics snapshot.
    fn stats(&self) -> ModelStats;
}

/// Sorts predictions by descending probability (ties broken by URL id so
/// output order is deterministic) and truncates to `max`.
pub fn rank_predictions(out: &mut Vec<Prediction>, max: usize) {
    out.sort_by(|a, b| {
        b.prob
            .partial_cmp(&a.prob)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.url.cmp(&b.url))
    });
    // One URL can be suggested by several mechanisms (e.g. PB's branch match
    // and a special link); keep the highest-probability copy.
    let mut seen = crate::fxhash::FxHashSet::default();
    out.retain(|p| seen.insert(p.url));
    out.truncate(max);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn labels() {
        assert_eq!(ModelKind::Standard { max_height: None }.label(), "PPM");
        assert_eq!(
            ModelKind::Standard {
                max_height: Some(3)
            }
            .label(),
            "3-PPM"
        );
        assert_eq!(ModelKind::Lrs.label(), "LRS-PPM");
        assert_eq!(ModelKind::Pb.label(), "PB-PPM");
    }

    #[test]
    fn rank_sorts_dedups_and_truncates() {
        let mut v = vec![
            Prediction::new(u(1), 0.5),
            Prediction::new(u(2), 0.9),
            Prediction::new(u(1), 0.7),
            Prediction::new(u(3), 0.1),
        ];
        rank_predictions(&mut v, 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].url, u(2));
        assert_eq!(v[1].url, u(1));
        assert_eq!(v[1].prob, 0.7); // higher-probability duplicate won
    }

    #[test]
    fn rank_breaks_probability_ties_by_url() {
        let mut v = vec![Prediction::new(u(9), 0.5), Prediction::new(u(1), 0.5)];
        rank_predictions(&mut v, 10);
        assert_eq!(v[0].url, u(1));
        assert_eq!(v[1].url, u(9));
    }
}
