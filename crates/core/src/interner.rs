//! String interning: URLs (and other identifiers) mapped to dense `u32` ids.
//!
//! Every hot data structure in the models stores [`UrlId`]s rather than
//! strings: ids are 4 bytes, hash in one multiply, and compare in one
//! instruction, which is what makes the arena trie in [`crate::tree`] compact
//! (see the Rust Performance Book, "Smaller Integers").

use crate::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier for an interned string (a URL in most of this crate).
///
/// Ids are assigned consecutively from zero in interning order, so they can
/// index plain `Vec`s (`Vec<Grade>`, `Vec<u64>` access counters, …) without
/// hashing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UrlId(pub u32);

impl UrlId {
    /// The id as a `usize`, for direct `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UrlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Two-way map between strings and dense [`UrlId`]s.
///
/// Interning is append-only: ids are never recycled, and
/// [`Interner::resolve`] of any previously returned id always succeeds.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: FxHashMap<Box<str>, UrlId>,
    by_id: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with capacity for `n` strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_name: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            by_id: Vec::with_capacity(n),
        }
    }

    /// Returns the id for `name`, interning it if it has not been seen.
    pub fn intern(&mut self, name: &str) -> UrlId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id =
            UrlId(u32::try_from(self.by_id.len()).expect("more than u32::MAX interned strings"));
        let boxed: Box<str> = name.into();
        self.by_id.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Returns the id for `name` if it has already been interned.
    pub fn get(&self, name: &str) -> Option<UrlId> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for `id`, or `None` if the id was never issued.
    pub fn resolve(&self, id: UrlId) -> Option<&str> {
        self.by_id.get(id.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    #[allow(clippy::cast_possible_truncation)] // ids were handed out as u32, so indices fit
    pub fn iter(&self) -> impl Iterator<Item = (UrlId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (UrlId(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("/a");
        let a2 = i.intern("/a");
        assert_eq!(a, a2);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("/a");
        let b = i.intern("/b");
        let c = i.intern("/c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("/some/long/path.html");
        assert_eq!(i.resolve(id), Some("/some/long/path.html"));
        assert_eq!(i.resolve(UrlId(99)), None);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("/a"), None);
        assert_eq!(i.len(), 0);
        let id = i.intern("/a");
        assert_eq!(i.get("/a"), Some(id));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        i.intern("/x");
        i.intern("/y");
        let pairs: Vec<_> = i.iter().map(|(id, s)| (id.0, s.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "/x".to_owned()), (1, "/y".to_owned())]);
    }

    #[test]
    fn empty_string_is_a_valid_key() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), Some(""));
    }
}
