//! Versioned, dependency-free binary persistence for trained models.
//!
//! The paper's low-storage pitch (§3, Table 1) implies a server that
//! persists its small PB-PPM model and warm-starts from it instead of
//! replaying the training trace. This module is that persistence layer: a
//! compact length-prefixed binary codec for every [`Predictor`] in the
//! crate — PB-PPM (special links included), standard PPM, LRS-PPM, the
//! order-1 Markov baseline, and the online sliding-window model — together
//! with the URL interner and the popularity table they depend on.
//!
//! ## File layout
//!
//! | offset  | size | field                                          |
//! |---------|------|------------------------------------------------|
//! | 0       | 8    | magic `"PBPPMSNP"`                             |
//! | 8       | 2    | format version, little-endian `u16`            |
//! | 10      | 8    | payload length `N`, little-endian `u64`        |
//! | 18      | N    | payload: model kind tag + body (varint-packed) |
//! | 18 + N  | 8    | FNV-1a 64 checksum of bytes `[0, 18 + N)`      |
//!
//! Integers inside the payload are LEB128 varints; `f64`s are stored as
//! their IEEE-754 bit pattern (8 bytes, little-endian) so probabilities and
//! thresholds round-trip **exactly** — reloading a model yields
//! bit-identical predictions, which the property tests in
//! `tests/snapshot_codec.rs` pin.
//!
//! ## Versioning policy
//!
//! The format version is bumped on any layout change; readers accept every
//! version in `[MIN_FORMAT_VERSION, FORMAT_VERSION]` and reject anything
//! newer or older outright ([`CodecError::UnsupportedVersion`]) rather
//! than guessing. Version 2 appends an optional frozen SoA/CSR arena
//! section to the PB, standard and LRS model bodies; version-1 files keep
//! decoding (the arena is simply absent and gets recompiled from the tree
//! at instantiation). The checksum covers header and payload, so
//! truncation and bit corruption both surface as clean errors instead of
//! garbage models.
//!
//! ## Crash-safe generations
//!
//! [`SnapshotStore`] manages a two-generation checkpoint directory
//! (`current.pbss` + `previous.pbss`): checkpoints are written to a temp
//! file, fsynced, and renamed into place, demoting the old current to
//! `previous`. [`SnapshotStore::recover`] loads the newest valid
//! generation, falling back to `previous` when `current` is truncated or
//! corrupt — the serving loop in the CLI builds directly on this.

use crate::interner::Interner;
use crate::lrs::{LrsPpm, LrsSnapshot};
use crate::order1::{Order1Markov, Order1RowSnapshot, Order1Snapshot};
use crate::pb::{PbConfig, PbPpm, PbSnapshot};
use crate::pb_online::{OnlinePbPpm, OnlinePbSnapshot};
use crate::popularity::PopularityTable;
use crate::predictor::Predictor;
use crate::prune::PruneConfig;
use crate::standard::{StandardPpm, StandardSnapshot};
use crate::tree::{NodeSnapshot, SnapshotError, TreeSnapshot};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The 8-byte magic at offset 0 of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PBPPMSNP";

/// Current format version, written by [`SnapshotFile::encode`]. Version 2
/// added the optional frozen-arena section to tree-model bodies.
pub const FORMAT_VERSION: u16 = 2;

/// Oldest format version readers still accept.
pub const MIN_FORMAT_VERSION: u16 = 1;

/// magic + version + payload length + checksum.
const ENVELOPE_BYTES: usize = 8 + 2 + 8 + 8;

/// File-name convention for snapshot files.
pub const SNAPSHOT_EXT: &str = "pbss";

// ------------------------------------------------------------------ errors

/// Why a snapshot byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the declared structure was complete.
    Truncated,
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is outside `[MIN_FORMAT_VERSION, FORMAT_VERSION]`.
    UnsupportedVersion(u16),
    /// The trailing checksum does not match the stream contents.
    ChecksumMismatch,
    /// An unknown model kind tag.
    BadKind(u8),
    /// Payload bytes left over after the model body — a length lie.
    TrailingBytes,
    /// A structurally invalid value (context in the message).
    Invalid(&'static str),
    /// The embedded tree image failed structural validation.
    Tree(SnapshotError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "snapshot is truncated"),
            CodecError::BadMagic => write!(f, "not a pbppm snapshot (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} \
                     (supported: {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            CodecError::ChecksumMismatch => write!(f, "snapshot checksum mismatch (corrupt file)"),
            CodecError::BadKind(k) => write!(f, "unknown model kind tag {k}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
            CodecError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            CodecError::Tree(e) => write!(f, "invalid tree image: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<SnapshotError> for CodecError {
    fn from(e: SnapshotError) -> Self {
        CodecError::Tree(e)
    }
}

/// A snapshot file operation failure: the I/O or the decode step.
#[derive(Debug)]
pub enum SnapshotIoError {
    /// Filesystem failure (path in the message).
    Io(String, std::io::Error),
    /// The bytes were read but did not decode.
    Codec(String, CodecError),
}

impl SnapshotIoError {
    fn io(path: &Path, e: std::io::Error) -> Self {
        SnapshotIoError::Io(path.display().to_string(), e)
    }

    /// True when the underlying cause is a missing file (recovery treats
    /// this as "no generation here", not corruption).
    pub fn is_not_found(&self) -> bool {
        matches!(self, SnapshotIoError::Io(_, e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

impl std::fmt::Display for SnapshotIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotIoError::Io(path, e) => write!(f, "{path}: {e}"),
            SnapshotIoError::Codec(path, e) => write!(f, "{path}: {e}"),
        }
    }
}

impl std::error::Error for SnapshotIoError {}

// ----------------------------------------------------------------- checksum

/// FNV-1a 64. Not cryptographic — it guards against truncation and bit rot,
/// not adversaries. Every byte feeds an invertible step (xor + odd-prime
/// multiply), so any single-byte change alters the digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// usize → u64 without an `as` cast. Lossless on every supported platform
/// (usize is at most 64 bits); saturates rather than truncates if that ever
/// stops being true.
fn len_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

// ------------------------------------------------------------ writer/reader

/// Append-only byte sink with LEB128 varints.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f).to_le_bytes()[0];
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn u32v(&mut self, v: u32) {
        self.varint(u64::from(v));
    }

    fn usizev(&mut self, v: usize) {
        self.varint(len_u64(v));
    }

    fn f64bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.usizev(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked byte source matching [`Writer`].
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("boolean")),
        }
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 64 {
                return Err(CodecError::Invalid("varint overflow"));
            }
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    fn u32v(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.varint()?).map_err(|_| CodecError::Invalid("u32 overflow"))
    }

    fn usizev(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.varint()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// A collection count, sanity-capped against the bytes that could
    /// possibly encode that many elements (at least one byte each), so a
    /// corrupt length cannot drive a huge allocation before [`Self::take`]
    /// fails naturally.
    fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.usizev()?;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn f64bits(&mut self) -> Result<f64, CodecError> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.count()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

// -------------------------------------------------------- component codecs

fn write_tree(w: &mut Writer, t: &TreeSnapshot) {
    w.usizev(t.nodes.len());
    for n in &t.nodes {
        w.u32v(n.url);
        w.varint(n.count);
        w.u32v(n.parent);
        w.u8(n.depth);
        w.usizev(n.children.len());
        for &(u, c) in &n.children {
            w.u32v(u);
            w.u32v(c);
        }
        w.bool(n.link_dup);
    }
    w.usizev(t.roots.len());
    for &(u, id) in &t.roots {
        w.u32v(u);
        w.u32v(id);
    }
    w.usizev(t.links.len());
    for (root, targets) in &t.links {
        w.u32v(*root);
        w.usizev(targets.len());
        for &t in targets {
            w.u32v(t);
        }
    }
}

fn read_tree(r: &mut Reader) -> Result<TreeSnapshot, CodecError> {
    let node_count = r.count()?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let url = r.u32v()?;
        let count = r.varint()?;
        let parent = r.u32v()?;
        let depth = r.u8()?;
        let child_count = r.count()?;
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            children.push((r.u32v()?, r.u32v()?));
        }
        let link_dup = r.bool()?;
        nodes.push(NodeSnapshot {
            url,
            count,
            parent,
            depth,
            children,
            link_dup,
        });
    }
    let root_count = r.count()?;
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push((r.u32v()?, r.u32v()?));
    }
    let link_count = r.count()?;
    let mut links = Vec::with_capacity(link_count);
    for _ in 0..link_count {
        let root = r.u32v()?;
        let target_count = r.count()?;
        let mut targets = Vec::with_capacity(target_count);
        for _ in 0..target_count {
            targets.push(r.u32v()?);
        }
        links.push((root, targets));
    }
    Ok(TreeSnapshot {
        nodes,
        roots,
        links,
    })
}

fn write_pop(w: &mut Writer, pop: &PopularityTable) {
    let counts = pop.counts();
    w.usizev(counts.len());
    for &c in counts {
        w.varint(c);
    }
}

fn read_pop(r: &mut Reader) -> Result<PopularityTable, CodecError> {
    let n = r.count()?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.varint()?);
    }
    Ok(PopularityTable::from_counts(counts))
}

fn write_pb_config(w: &mut Writer, cfg: &PbConfig) {
    for h in cfg.heights {
        w.u8(h);
    }
    w.bool(cfg.special_links);
    match cfg.prune.relative_threshold {
        Some(t) => {
            w.bool(true);
            w.f64bits(t);
        }
        None => w.bool(false),
    }
    match cfg.prune.min_abs_count {
        Some(c) => {
            w.bool(true);
            w.varint(c);
        }
        None => w.bool(false),
    }
    w.usizev(cfg.max_order);
}

fn read_pb_config(r: &mut Reader) -> Result<PbConfig, CodecError> {
    let mut heights = [0u8; 4];
    for h in &mut heights {
        *h = r.u8()?;
    }
    let special_links = r.bool()?;
    let relative_threshold = if r.bool()? { Some(r.f64bits()?) } else { None };
    let min_abs_count = if r.bool()? { Some(r.varint()?) } else { None };
    let max_order = r.usizev()?;
    Ok(PbConfig {
        heights,
        special_links,
        prune: PruneConfig {
            relative_threshold,
            min_abs_count,
        },
        max_order,
    })
}

/// Writes the optional frozen-arena section (format version ≥ 2): a
/// presence flag, then the SoA/CSR arrays. `root_lookup` is derived data
/// and is rebuilt on read rather than stored.
fn write_frozen(w: &mut Writer, frozen: Option<&crate::frozen::FrozenTree>) {
    let Some(f) = frozen else {
        w.bool(false);
        return;
    };
    w.bool(true);
    w.usizev(f.urls.len());
    for &u in &f.urls {
        w.u32v(u.0);
    }
    for &c in &f.counts {
        w.varint(c);
    }
    w.bytes(&f.depths);
    for &p in &f.parents {
        w.u32v(p);
    }
    w.bytes(&f.grades);
    w.usizev(f.dup_bits.len());
    for &word in &f.dup_bits {
        w.varint(word);
    }
    w.usizev(f.child_offsets.len());
    for &o in &f.child_offsets {
        w.u32v(o);
    }
    w.usizev(f.child_entries.len());
    for &(u, c) in &f.child_entries {
        w.u32v(u.0);
        w.u32v(c);
    }
    w.usizev(f.roots.len());
    for &(u, id) in &f.roots {
        w.u32v(u.0);
        w.u32v(id);
    }
    w.usizev(f.link_offsets.len());
    for &o in &f.link_offsets {
        w.u32v(o);
    }
    w.usizev(f.link_entries.len());
    for &t in &f.link_entries {
        w.u32v(t);
    }
}

/// Reads what [`write_frozen`] wrote, revalidating the structure through
/// [`crate::frozen::FrozenTree`]'s parts constructor — a corrupt or forged
/// CSR surfaces as [`CodecError::Invalid`], never as a panicking arena.
fn read_frozen(r: &mut Reader) -> Result<Option<crate::frozen::FrozenTree>, CodecError> {
    use crate::interner::UrlId;
    if !r.bool()? {
        return Ok(None);
    }
    let n = r.count()?;
    let mut urls = Vec::with_capacity(n);
    for _ in 0..n {
        urls.push(UrlId(r.u32v()?));
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.varint()?);
    }
    let depths = r.take(n)?.to_vec();
    let mut parents = Vec::with_capacity(n);
    for _ in 0..n {
        parents.push(r.u32v()?);
    }
    let grades = r.take(n)?.to_vec();
    let word_count = r.count()?;
    let mut dup_bits = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        dup_bits.push(r.varint()?);
    }
    let offset_count = r.count()?;
    let mut child_offsets = Vec::with_capacity(offset_count);
    for _ in 0..offset_count {
        child_offsets.push(r.u32v()?);
    }
    let entry_count = r.count()?;
    let mut child_entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        child_entries.push((UrlId(r.u32v()?), r.u32v()?));
    }
    let root_count = r.count()?;
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push((UrlId(r.u32v()?), r.u32v()?));
    }
    let link_offset_count = r.count()?;
    let mut link_offsets = Vec::with_capacity(link_offset_count);
    for _ in 0..link_offset_count {
        link_offsets.push(r.u32v()?);
    }
    let link_entry_count = r.count()?;
    let mut link_entries = Vec::with_capacity(link_entry_count);
    for _ in 0..link_entry_count {
        link_entries.push(r.u32v()?);
    }
    let parts = crate::frozen::FrozenParts {
        urls,
        counts,
        depths,
        parents,
        grades,
        dup_bits,
        child_offsets,
        child_entries,
        roots,
        link_offsets,
        link_entries,
    };
    crate::frozen::FrozenTree::from_parts(parts)
        .map(Some)
        .map_err(CodecError::Invalid)
}

fn write_pb(w: &mut Writer, s: &PbSnapshot, version: u16) {
    write_tree(w, &s.tree);
    write_pop(w, &s.pop);
    write_pb_config(w, &s.cfg);
    w.bool(s.finalized);
    if version >= 2 {
        write_frozen(w, s.frozen.as_ref());
    }
}

fn read_pb(r: &mut Reader, version: u16) -> Result<PbSnapshot, CodecError> {
    let tree = read_tree(r)?;
    let pop = read_pop(r)?;
    let cfg = read_pb_config(r)?;
    let finalized = r.bool()?;
    let frozen = if version >= 2 { read_frozen(r)? } else { None };
    Ok(PbSnapshot {
        tree,
        pop,
        cfg,
        finalized,
        frozen,
    })
}

fn write_sessions(w: &mut Writer, sessions: &[Vec<crate::interner::UrlId>]) {
    w.usizev(sessions.len());
    for s in sessions {
        w.usizev(s.len());
        for &u in s {
            w.u32v(u.0);
        }
    }
}

fn read_sessions(r: &mut Reader) -> Result<Vec<Vec<crate::interner::UrlId>>, CodecError> {
    let n = r.count()?;
    let mut sessions = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.count()?;
        let mut s = Vec::with_capacity(len);
        for _ in 0..len {
            s.push(crate::interner::UrlId(r.u32v()?));
        }
        sessions.push(s);
    }
    Ok(sessions)
}

// ------------------------------------------------------------- model image

/// Kind tags in the payload's first byte.
const KIND_PB: u8 = 1;
const KIND_STANDARD: u8 = 2;
const KIND_LRS: u8 = 3;
const KIND_ORDER1: u8 = 4;
const KIND_ONLINE_PB: u8 = 5;

/// A serializable image of any model the crate can persist.
#[derive(Debug, Clone)]
pub enum ModelImage {
    /// Popularity-based PPM (special links included).
    Pb(PbSnapshot),
    /// Standard PPM.
    Standard(StandardSnapshot),
    /// LRS-PPM.
    Lrs(LrsSnapshot),
    /// First-order Markov baseline.
    Order1(Order1Snapshot),
    /// Sliding-window online PB-PPM (window + inner model + schedule).
    OnlinePb(OnlinePbSnapshot),
}

impl ModelImage {
    fn tag(&self) -> u8 {
        match self {
            ModelImage::Pb(_) => KIND_PB,
            ModelImage::Standard(_) => KIND_STANDARD,
            ModelImage::Lrs(_) => KIND_LRS,
            ModelImage::Order1(_) => KIND_ORDER1,
            ModelImage::OnlinePb(_) => KIND_ONLINE_PB,
        }
    }

    /// Short label for telemetry and messages ("PB-PPM", "PPM", …).
    pub fn kind_label(&self) -> &'static str {
        match self {
            ModelImage::Pb(_) => "PB-PPM",
            ModelImage::Standard(_) => "PPM",
            ModelImage::Lrs(_) => "LRS-PPM",
            ModelImage::Order1(_) => "O1",
            ModelImage::OnlinePb(_) => "online-PB-PPM",
        }
    }
}

// ------------------------------------------------------------ the envelope

/// A complete snapshot: the URL interner (id order) plus one model image.
///
/// Snapshots store dense [`crate::interner::UrlId`]s; the URL list makes
/// them meaningful again after a restart.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    /// Interned URL strings, in id order (`urls[i]` is `UrlId(i)`).
    pub urls: Vec<String>,
    /// The model.
    pub model: ModelImage,
}

impl SnapshotFile {
    /// Encodes the snapshot into the framed binary format at the current
    /// [`FORMAT_VERSION`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_at_version(FORMAT_VERSION)
    }

    /// Encodes at a specific supported format version. Version 1 omits the
    /// frozen-arena sections. Exposed for compatibility tests; production
    /// writers always use [`SnapshotFile::encode`].
    #[doc(hidden)]
    pub fn encode_at_version(&self, version: u16) -> Vec<u8> {
        debug_assert!(
            (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version),
            "encode_at_version({version}) outside the supported range"
        );
        let mut payload = Writer::new();
        payload.u8(self.model.tag());
        payload.usizev(self.urls.len());
        for url in &self.urls {
            payload.str(url);
        }
        match &self.model {
            ModelImage::Pb(s) => write_pb(&mut payload, s, version),
            ModelImage::Standard(s) => {
                write_tree(&mut payload, &s.tree);
                match s.max_height {
                    Some(h) => {
                        payload.bool(true);
                        payload.u8(h);
                    }
                    None => payload.bool(false),
                }
                payload.bool(s.finalized);
                if version >= 2 {
                    write_frozen(&mut payload, s.frozen.as_ref());
                }
            }
            ModelImage::Lrs(s) => {
                write_tree(&mut payload, &s.tree);
                payload.varint(s.min_support);
                payload.usizev(s.max_height);
                payload.bool(s.finalized);
                if version >= 2 {
                    write_frozen(&mut payload, s.frozen.as_ref());
                }
            }
            ModelImage::Order1(s) => {
                payload.usizev(s.rows.len());
                for row in &s.rows {
                    payload.u32v(row.url);
                    payload.varint(row.total);
                    payload.usizev(row.next.len());
                    for &(u, c) in &row.next {
                        payload.u32v(u);
                        payload.varint(c);
                    }
                }
                payload.bool(s.finalized);
            }
            ModelImage::OnlinePb(s) => {
                write_pb_config(&mut payload, &s.cfg);
                payload.usizev(s.max_window);
                payload.usizev(s.rebuild_every);
                payload.usizev(s.since_rebuild);
                payload.varint(s.rebuilds);
                write_sessions(&mut payload, &s.window);
                match &s.model {
                    Some(m) => {
                        payload.bool(true);
                        write_pb(&mut payload, m, version);
                    }
                    None => payload.bool(false),
                }
            }
        }
        let payload = payload.buf;

        let mut out = Vec::with_capacity(ENVELOPE_BYTES + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&len_u64(payload.len()).to_le_bytes());
        out.extend_from_slice(&payload);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a framed snapshot, validating magic, version, length, and
    /// checksum before touching the payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() >= 8 && bytes[..8] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        if bytes.len() < ENVELOPE_BYTES {
            return Err(CodecError::Truncated);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[10..18]);
        let payload_len = u64::from_le_bytes(len8);
        let expected_total = len_u64(ENVELOPE_BYTES).checked_add(payload_len);
        match expected_total {
            Some(total) if total == len_u64(bytes.len()) => {}
            Some(total) if total > len_u64(bytes.len()) => return Err(CodecError::Truncated),
            _ => return Err(CodecError::TrailingBytes),
        }
        let body_end = bytes.len() - 8;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[body_end..]);
        if fnv1a(&bytes[..body_end]) != u64::from_le_bytes(sum8) {
            return Err(CodecError::ChecksumMismatch);
        }

        let mut r = Reader::new(&bytes[18..body_end]);
        let tag = r.u8()?;
        let url_count = r.count()?;
        let mut urls = Vec::with_capacity(url_count);
        for _ in 0..url_count {
            urls.push(r.str()?.to_owned());
        }
        let model = match tag {
            KIND_PB => ModelImage::Pb(read_pb(&mut r, version)?),
            KIND_STANDARD => {
                let tree = read_tree(&mut r)?;
                let max_height = if r.bool()? { Some(r.u8()?) } else { None };
                let finalized = r.bool()?;
                let frozen = if version >= 2 {
                    read_frozen(&mut r)?
                } else {
                    None
                };
                ModelImage::Standard(StandardSnapshot {
                    tree,
                    max_height,
                    finalized,
                    frozen,
                })
            }
            KIND_LRS => {
                let tree = read_tree(&mut r)?;
                let min_support = r.varint()?;
                let max_height = r.usizev()?;
                let finalized = r.bool()?;
                let frozen = if version >= 2 {
                    read_frozen(&mut r)?
                } else {
                    None
                };
                ModelImage::Lrs(LrsSnapshot {
                    tree,
                    min_support,
                    max_height,
                    finalized,
                    frozen,
                })
            }
            KIND_ORDER1 => {
                let row_count = r.count()?;
                let mut rows = Vec::with_capacity(row_count);
                for _ in 0..row_count {
                    let url = r.u32v()?;
                    let total = r.varint()?;
                    let next_count = r.count()?;
                    let mut next = Vec::with_capacity(next_count);
                    for _ in 0..next_count {
                        next.push((r.u32v()?, r.varint()?));
                    }
                    rows.push(Order1RowSnapshot { url, total, next });
                }
                let finalized = r.bool()?;
                ModelImage::Order1(Order1Snapshot { rows, finalized })
            }
            KIND_ONLINE_PB => {
                let cfg = read_pb_config(&mut r)?;
                let max_window = r.usizev()?;
                let rebuild_every = r.usizev()?;
                let since_rebuild = r.usizev()?;
                let rebuilds = r.varint()?;
                let window = read_sessions(&mut r)?;
                let model = if r.bool()? {
                    Some(read_pb(&mut r, version)?)
                } else {
                    None
                };
                ModelImage::OnlinePb(OnlinePbSnapshot {
                    cfg,
                    window,
                    max_window,
                    rebuild_every,
                    since_rebuild,
                    rebuilds,
                    model,
                })
            }
            other => return Err(CodecError::BadKind(other)),
        };
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes);
        }
        Ok(SnapshotFile { urls, model })
    }

    /// Rebuilds the interner from the stored URL list.
    pub fn interner(&self) -> Interner {
        let mut interner = Interner::with_capacity(self.urls.len());
        for url in &self.urls {
            interner.intern(url);
        }
        interner
    }

    /// Instantiates the stored model behind the common [`Predictor`]
    /// interface, revalidating the tree image.
    pub fn instantiate(&self) -> Result<Box<dyn Predictor>, SnapshotError> {
        Ok(match &self.model {
            ModelImage::Pb(s) => Box::new(PbPpm::from_snapshot(s)?),
            ModelImage::Standard(s) => Box::new(StandardPpm::from_snapshot(s)?),
            ModelImage::Lrs(s) => Box::new(LrsPpm::from_snapshot(s)?),
            ModelImage::Order1(s) => Box::new(Order1Markov::from_snapshot(s)),
            ModelImage::OnlinePb(s) => Box::new(OnlinePbPpm::from_snapshot(s)?),
        })
    }

    /// Atomically writes the snapshot to `path`: encode, write to a
    /// sibling temp file, fsync, rename into place, fsync the directory.
    /// Returns the file size in bytes.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, SnapshotIoError> {
        let start = std::time::Instant::now();
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        let write = |p: &Path| -> std::io::Result<()> {
            let mut f = std::fs::File::create(p)?;
            f.write_all(&bytes)?;
            f.sync_all()
        };
        write(&tmp).map_err(|e| SnapshotIoError::io(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotIoError::io(path, e))?;
        sync_dir(path);
        if pbppm_obs::ENABLED {
            let reg = pbppm_obs::global();
            let label = format!("model={}", self.model.kind_label());
            reg.counter("snapshot.writes", &label).inc();
            reg.gauge("snapshot.bytes", &label)
                .set(len_u64(bytes.len()));
            reg.histogram("snapshot.write_micros", &label)
                .observe(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        Ok(len_u64(bytes.len()))
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn read(path: &Path) -> Result<Self, SnapshotIoError> {
        let start = std::time::Instant::now();
        let bytes = std::fs::read(path).map_err(|e| SnapshotIoError::io(path, e))?;
        let file = Self::decode(&bytes)
            .map_err(|e| SnapshotIoError::Codec(path.display().to_string(), e))?;
        if pbppm_obs::ENABLED {
            let reg = pbppm_obs::global();
            let label = format!("model={}", file.model.kind_label());
            reg.counter("snapshot.loads", &label).inc();
            reg.histogram("snapshot.load_micros", &label)
                .observe(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        Ok(file)
    }
}

/// Best-effort directory fsync so the rename itself is durable. Failure is
/// ignored: not every platform or filesystem supports it, and the data file
/// was already synced.
fn sync_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

// ------------------------------------------------------------------- store

/// Which checkpoint generation a recovery loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// `current.pbss` — the newest checkpoint.
    Current,
    /// `previous.pbss` — the fallback after a corrupt or truncated current.
    Previous,
}

/// A two-generation crash-safe checkpoint directory.
///
/// [`SnapshotStore::checkpoint`] writes the new snapshot to a temp file
/// (fsynced), demotes `current.pbss` to `previous.pbss`, and renames the
/// temp file into place. Each step is an atomic rename; a crash between the
/// demotion and the final rename leaves only `previous.pbss`, which
/// [`SnapshotStore::recover`] handles like any other missing-current case.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory managed by the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the newest checkpoint.
    pub fn current_path(&self) -> PathBuf {
        self.dir.join(format!("current.{SNAPSHOT_EXT}"))
    }

    /// Path of the demoted (one-older) checkpoint.
    pub fn previous_path(&self) -> PathBuf {
        self.dir.join(format!("previous.{SNAPSHOT_EXT}"))
    }

    /// Writes a new checkpoint generation, demoting the old current.
    /// Returns the checkpoint size in bytes.
    pub fn checkpoint(&self, file: &SnapshotFile) -> Result<u64, SnapshotIoError> {
        let current = self.current_path();
        let incoming = self.dir.join(format!("incoming.{SNAPSHOT_EXT}"));
        let bytes = file.write_atomic(&incoming)?;
        if current.exists() {
            std::fs::rename(&current, self.previous_path())
                .map_err(|e| SnapshotIoError::io(&current, e))?;
        }
        std::fs::rename(&incoming, &current).map_err(|e| SnapshotIoError::io(&current, e))?;
        sync_dir(&current);
        if pbppm_obs::ENABLED {
            pbppm_obs::global()
                .counter("snapshot.checkpoints", "")
                .inc();
        }
        Ok(bytes)
    }

    /// Loads the newest valid checkpoint.
    ///
    /// `Ok(None)` when the directory holds no checkpoint at all. When
    /// `current.pbss` is corrupt or truncated, falls back to
    /// `previous.pbss` (counting the event under
    /// `snapshot.recover.fallback`); the error is returned only when no
    /// generation is loadable.
    pub fn recover(&self) -> Result<Option<(SnapshotFile, Generation)>, SnapshotIoError> {
        let reg = pbppm_obs::ENABLED.then(pbppm_obs::global);
        match SnapshotFile::read(&self.current_path()) {
            Ok(file) => {
                if let Some(reg) = reg {
                    reg.counter("snapshot.recover.current", "").inc();
                }
                Ok(Some((file, Generation::Current)))
            }
            Err(current_err) => {
                let current_missing = current_err.is_not_found();
                if !current_missing {
                    pbppm_obs::obs_warn!(
                        "snapshot recovery: current generation unusable ({current_err}); \
                         falling back to previous"
                    );
                }
                match SnapshotFile::read(&self.previous_path()) {
                    Ok(file) => {
                        if let Some(reg) = reg {
                            reg.counter("snapshot.recover.fallback", "").inc();
                        }
                        Ok(Some((file, Generation::Previous)))
                    }
                    Err(prev_err) if prev_err.is_not_found() => {
                        if current_missing {
                            // Nothing here yet: a fresh directory.
                            Ok(None)
                        } else {
                            if let Some(reg) = reg {
                                reg.counter("snapshot.recover.failed", "").inc();
                            }
                            Err(current_err)
                        }
                    }
                    Err(prev_err) => {
                        if let Some(reg) = reg {
                            reg.counter("snapshot.recover.failed", "").inc();
                        }
                        if current_missing {
                            Err(prev_err)
                        } else {
                            pbppm_obs::obs_warn!(
                                "snapshot recovery: previous generation also unusable ({prev_err})"
                            );
                            Err(current_err)
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::UrlId;
    use crate::popularity::PopularityTable;

    fn trained_pb() -> (Vec<String>, PbPpm) {
        let urls: Vec<String> = (0..6).map(|i| format!("/page{i}.html")).collect();
        let mut pop = PopularityTable::builder();
        for _ in 0..50 {
            pop.record(UrlId(0));
        }
        for _ in 0..5 {
            pop.record(UrlId(1));
            pop.record(UrlId(2));
        }
        pop.record(UrlId(3));
        let mut m = PbPpm::new(pop.build(), PbConfig::default());
        for _ in 0..10 {
            m.train_session(&[UrlId(0), UrlId(1), UrlId(2)]);
            m.train_session(&[UrlId(0), UrlId(2), UrlId(3)]);
        }
        m.finalize();
        (urls, m)
    }

    #[test]
    fn envelope_roundtrip() {
        let (urls, m) = trained_pb();
        let file = SnapshotFile {
            urls: urls.clone(),
            model: ModelImage::Pb(m.to_snapshot()),
        };
        let bytes = file.encode();
        assert_eq!(&bytes[..8], &MAGIC);
        let back = SnapshotFile::decode(&bytes).unwrap();
        assert_eq!(back.urls, urls);
        let restored = back.instantiate().unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut ua = crate::predictor::PredictUsage::default();
        let mut ub = crate::predictor::PredictUsage::default();
        m.predict_ro(&[UrlId(0)], &mut a, &mut ua);
        restored.predict_ro(&[UrlId(0)], &mut b, &mut ub);
        assert_eq!(a, b);
        // Snapshots compact the arena (pruned slots disappear), so byte
        // sizes may shrink; every structural stat must survive.
        let (mut sa, mut sb) = (m.stats(), restored.stats());
        assert!(sb.memory_bytes <= sa.memory_bytes);
        sa.memory_bytes = 0;
        sb.memory_bytes = 0;
        assert_eq!(sa, sb);
    }

    #[test]
    fn v2_roundtrip_preserves_frozen_arena() {
        let (urls, m) = trained_pb();
        let snap = m.to_snapshot();
        assert!(snap.frozen.is_some(), "finalized PB must carry an arena");
        let file = SnapshotFile {
            urls,
            model: ModelImage::Pb(snap.clone()),
        };
        let back = SnapshotFile::decode(&file.encode()).unwrap();
        let ModelImage::Pb(decoded) = &back.model else {
            panic!("kind changed in roundtrip");
        };
        assert_eq!(decoded.frozen, snap.frozen);
    }

    #[test]
    fn v1_legacy_encoding_still_decodes_and_recompiles_frozen() {
        let (urls, m) = trained_pb();
        let file = SnapshotFile {
            urls: urls.clone(),
            model: ModelImage::Pb(m.to_snapshot()),
        };
        let legacy = file.encode_at_version(1);
        assert_eq!(u16::from_le_bytes([legacy[8], legacy[9]]), 1);
        let back = SnapshotFile::decode(&legacy).unwrap();
        let ModelImage::Pb(decoded) = &back.model else {
            panic!("kind changed in roundtrip");
        };
        assert!(decoded.frozen.is_none(), "v1 carries no frozen section");
        // Instantiation recompiles the arena from the tree, so a legacy
        // file still serves from the frozen read path.
        let restored = back.instantiate().unwrap();
        assert!(restored.frozen().is_some());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut ua = crate::predictor::PredictUsage::default();
        let mut ub = crate::predictor::PredictUsage::default();
        m.predict_ro(&[UrlId(0)], &mut a, &mut ua);
        restored.predict_ro(&[UrlId(0)], &mut b, &mut ub);
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_frozen_section_is_rejected_cleanly() {
        let (urls, m) = trained_pb();
        let mut snap = m.to_snapshot();
        // Forge a structurally broken CSR: an offsets table whose length
        // disagrees with the node count. `from_parts` must refuse it.
        if let Some(f) = snap.frozen.as_mut() {
            f.child_offsets.pop();
        }
        let file = SnapshotFile {
            urls,
            model: ModelImage::Pb(snap),
        };
        match SnapshotFile::decode(&file.encode()) {
            Err(CodecError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let (urls, m) = trained_pb();
        let mut bytes = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        }
        .encode();
        bytes[0] ^= 0xff;
        assert_eq!(
            SnapshotFile::decode(&bytes).unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            SnapshotFile::decode(b"not a snapshot at all").unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn decode_rejects_future_version() {
        let (urls, m) = trained_pb();
        let mut bytes = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        }
        .encode();
        bytes[8] = 0x63; // version 99
        assert_eq!(
            SnapshotFile::decode(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn decode_rejects_truncation_at_any_prefix() {
        let (urls, m) = trained_pb();
        let bytes = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = SnapshotFile::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::BadMagic),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_any_flipped_payload_byte() {
        let (urls, m) = trained_pb();
        let bytes = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        }
        .encode();
        // Flip one bit in every payload byte (and the checksum itself):
        // never a panic, always a clean error.
        for i in 18..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                SnapshotFile::decode(&corrupt).is_err(),
                "flipped byte {i} went undetected"
            );
        }
    }

    #[test]
    fn garbage_payload_with_valid_envelope_is_rejected() {
        // A syntactically valid envelope (magic, version, length, checksum
        // all good) around a garbage payload must fail with a clean decode
        // error, never a panic: the checksum only proves the bytes are what
        // was written, not that what was written makes sense.
        let payloads: [&[u8]; 4] = [
            &[],        // no kind tag at all
            &[0x2a],    // unknown kind tag
            &[KIND_PB], // ends right after the tag
            // kind tag + an 11-byte varint url count (overflows u64)
            &[
                KIND_PB, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
            ],
        ];
        for payload in payloads {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            bytes.extend_from_slice(&len_u64(payload.len()).to_le_bytes());
            bytes.extend_from_slice(payload);
            let checksum = fnv1a(&bytes);
            bytes.extend_from_slice(&checksum.to_le_bytes());
            assert!(
                SnapshotFile::decode(&bytes).is_err(),
                "garbage payload {payload:?} decoded"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let (urls, m) = trained_pb();
        let mut bytes = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        }
        .encode();
        bytes.push(0);
        assert_eq!(
            SnapshotFile::decode(&bytes).unwrap_err(),
            CodecError::TrailingBytes
        );
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("pbppm-snapshot-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn store_keeps_one_previous_generation() {
        let store = temp_store("generations");
        let (urls, m) = trained_pb();
        let file = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        };
        assert!(store.recover().unwrap().is_none(), "fresh dir is empty");
        store.checkpoint(&file).unwrap();
        assert!(store.current_path().exists());
        assert!(!store.previous_path().exists());
        store.checkpoint(&file).unwrap();
        assert!(store.current_path().exists());
        assert!(store.previous_path().exists());
        let (_, generation) = store.recover().unwrap().unwrap();
        assert_eq!(generation, Generation::Current);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn store_falls_back_to_previous_on_truncated_current() {
        let store = temp_store("fallback");
        let (urls, m) = trained_pb();
        let file = SnapshotFile {
            urls: urls.clone(),
            model: ModelImage::Pb(m.to_snapshot()),
        };
        store.checkpoint(&file).unwrap();
        store.checkpoint(&file).unwrap();
        // Truncate the current generation mid-payload.
        let bytes = std::fs::read(store.current_path()).unwrap();
        std::fs::write(store.current_path(), &bytes[..bytes.len() / 2]).unwrap();
        let (recovered, generation) = store.recover().unwrap().unwrap();
        assert_eq!(generation, Generation::Previous);
        assert_eq!(recovered.urls, urls);
        assert!(recovered.instantiate().is_ok());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn store_errors_when_every_generation_is_corrupt() {
        let store = temp_store("all-corrupt");
        let (urls, m) = trained_pb();
        let file = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        };
        store.checkpoint(&file).unwrap();
        store.checkpoint(&file).unwrap();
        for path in [store.current_path(), store.previous_path()] {
            let mut bytes = std::fs::read(&path).unwrap();
            let at = bytes.len() / 2;
            bytes[at] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
        }
        assert!(store.recover().is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
