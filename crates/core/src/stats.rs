//! Structural model statistics backing the paper's space and utilization
//! metrics (Tables 1–2, Figure 2 right, Figure 4).

use crate::tree::Tree;
use serde::{Deserialize, Serialize};

/// A snapshot of a model's tree structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Alive URL nodes — the paper's "space size in number of nodes".
    pub nodes: usize,
    /// Alive branch roots.
    pub roots: usize,
    /// Parent→child edges between alive nodes.
    pub edges: usize,
    /// Alive PB-PPM special-link (duplicated popular) nodes.
    pub special_links: usize,
    /// Depth of the deepest alive node.
    pub max_depth: u8,
    /// Root-to-leaf paths currently stored.
    pub total_paths: usize,
    /// Paths whose leaf participated in at least one prediction.
    pub used_paths: usize,
    /// Approximate resident memory of the tree arena, in bytes.
    pub memory_bytes: usize,
    /// `(node, window)` entries in the model's `ContextIndex` (0 before
    /// finalization).
    pub index_entries: usize,
    /// Approximate resident memory of the `ContextIndex`, in bytes.
    pub index_bytes: usize,
}

impl ModelStats {
    /// Collects statistics from a tree. Index fields stay 0; models that
    /// carry a `ContextIndex` fill them via [`ModelStats::with_index`].
    pub fn of_tree(tree: &Tree) -> Self {
        let (total_paths, used_paths) = tree.path_usage();
        Self {
            nodes: tree.node_count(),
            roots: tree.root_count(),
            edges: tree.edge_count(),
            special_links: tree.link_count(),
            max_depth: tree.max_depth(),
            total_paths,
            used_paths,
            memory_bytes: tree.memory_bytes(),
            index_entries: 0,
            index_bytes: 0,
        }
    }

    /// Adds the model's `ContextIndex` footprint to the snapshot.
    pub fn with_index(mut self, index: &crate::context_index::ContextIndex) -> Self {
        self.index_entries = index.len();
        self.index_bytes = index.memory_bytes();
        self
    }

    /// Approximate total resident bytes: tree arena plus fingerprint index
    /// — the quantity behind the paper's Table-1 storage comparison once
    /// the matching acceleration structures are included.
    pub fn total_bytes(&self) -> usize {
        self.memory_bytes + self.index_bytes
    }

    /// Fraction of stored paths that were used for predictions
    /// (the paper's *path utilization rate*, Fig. 2 right).
    ///
    /// Returns 1.0 for an empty model: a model storing nothing wastes
    /// nothing.
    pub fn path_utilization(&self) -> f64 {
        if self.total_paths == 0 {
            1.0
        } else {
            self.used_paths as f64 / self.total_paths as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::UrlId;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn stats_of_empty_tree() {
        let s = ModelStats::of_tree(&Tree::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.path_utilization(), 1.0);
    }

    #[test]
    fn stats_reflect_tree_shape() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        t.insert_path(&[u(4)], usize::MAX);
        let s = ModelStats::of_tree(&t);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.roots, 2);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.total_paths, 2);
        assert_eq!(s.used_paths, 0);
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn edges_and_links_are_counted() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        let root = t.descend(&[u(1)]).unwrap();
        t.link_or_insert(root, u(9));
        let s = ModelStats::of_tree(&t);
        assert_eq!(s.nodes, 4);
        // Two branch edges (1→2, 2→3) plus the special link under the root.
        assert_eq!(s.edges, 3);
        assert_eq!(s.special_links, 1);
        assert_eq!(s.index_entries, 0, "no index attached yet");
        assert_eq!(s.total_bytes(), s.memory_bytes);
    }

    #[test]
    fn with_index_adds_the_index_footprint() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let index = crate::context_index::ContextIndex::full_paths(&mut t);
        let s = ModelStats::of_tree(&t).with_index(&index);
        assert_eq!(s.index_entries, 2);
        assert!(s.index_bytes > 0);
        assert_eq!(s.total_bytes(), s.memory_bytes + s.index_bytes);
    }

    #[test]
    fn utilization_counts_used_leaves() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        t.insert_path(&[u(3), u(4)], usize::MAX);
        let leaf = t.descend(&[u(1), u(2)]).unwrap();
        t.mark_used(leaf);
        let s = ModelStats::of_tree(&t);
        assert_eq!(s.total_paths, 2);
        assert_eq!(s.used_paths, 1);
        assert!((s.path_utilization() - 0.5).abs() < 1e-12);
    }
}
