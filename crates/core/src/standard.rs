//! The **standard PPM** model (§3.2, first approach).
//!
//! For every access session `s₀ s₁ … sₙ₋₁` a branch is created from *every*
//! position: the suffix starting at `sᵢ` is inserted under a root for `sᵢ`,
//! truncated to the configured maximum height. With a fixed height `m` this
//! is the classic order-(m−1) PPM forest used by Palpanas & Mendelzon and by
//! Fan et al.; with no height limit it is the paper's "upper bound of
//! prediction accuracy" configuration used in §4.
//!
//! Its two weaknesses — motivating PB-PPM — are reproduced faithfully here:
//! storage grows with every distinct subsequence ever observed, and most
//! stored paths are never used for a prediction.

use crate::context_index::{ContextHashes, ContextIndex};
use crate::frozen::{choose_strategy, FrozenTree, MatchStrategy};
use crate::interner::UrlId;
use crate::predictor::{rank_predictions, ModelKind, PredictUsage, Prediction, Predictor};
use crate::stats::ModelStats;
use crate::tree::{NodeId, Tree};

/// Standard PPM prediction model.
#[derive(Debug, Clone)]
pub struct StandardPpm {
    pub(crate) tree: Tree,
    pub(crate) max_height: Option<u8>,
    /// Longest context (in URLs) considered when matching.
    pub(crate) max_order: usize,
    pub(crate) finalized: bool,
    /// Full-root-path fingerprint index, built by `finalize`. `None` before
    /// finalization, when prediction falls back to the descend walk.
    pub(crate) index: Option<ContextIndex>,
    /// Frozen SoA/CSR arena, compiled by `finalize`; the serving read path.
    pub(crate) frozen: Option<FrozenTree>,
    /// Adaptive choice between the frozen descent and the fingerprint
    /// index, made at finalize from measured bucket occupancy.
    pub(crate) strategy: MatchStrategy,
}

impl StandardPpm {
    /// Creates a standard PPM model with branches capped at `max_height`
    /// nodes (`None` = unbounded, bounded in practice by session length).
    pub fn new(max_height: Option<u8>) -> Self {
        let max_order = max_height.map_or(usize::from(u8::MAX), |h| usize::from(h).max(1));
        Self {
            tree: Tree::new(),
            max_height,
            max_order,
            finalized: false,
            index: None,
            frozen: None,
            strategy: MatchStrategy::FrozenScan,
        }
    }

    /// The conventional "3-PPM" used throughout the paper's §3 figures.
    pub fn order3() -> Self {
        Self::new(Some(3))
    }

    /// The unbounded-height configuration of §4 ("upper bound").
    pub fn unbounded() -> Self {
        Self::new(None)
    }

    /// Read-only access to the underlying tree (tests, rendering).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Trains on every session, deterministically parallel: contiguous
    /// session partitions grow private partial forests which merge back in
    /// partition order ([`Tree::merge_from`]) — bit-identical to a
    /// sequential [`Predictor::train_session`] loop at every thread count
    /// (`0` = auto via `PBPPM_THREADS`/available parallelism).
    pub fn train_sessions<S: AsRef<[UrlId]> + Sync>(&mut self, sessions: &[S], threads: usize) {
        debug_assert!(!self.finalized, "train_sessions after finalize");
        let threads = crate::parallel::resolve_threads(threads).min(sessions.len().max(1));
        if threads <= 1 {
            for s in sessions {
                self.train_session(s.as_ref());
            }
            return;
        }
        let h = self
            .max_height
            .map_or(usize::from(u8::MAX), usize::from)
            .max(1);
        let ranges = crate::parallel::partition_ranges(sessions.len(), threads);
        let donors = crate::parallel::parallel_map_with(&ranges, threads, |r| {
            let mut tree = Tree::new();
            for s in &sessions[r.clone()] {
                let s = s.as_ref();
                for start in 0..s.len() {
                    tree.insert_path(&s[start..], h);
                }
            }
            tree
        });
        for donor in &donors {
            self.tree.merge_from(donor);
        }
    }

    /// Serializes the trained model for persistence.
    pub fn to_snapshot(&self) -> StandardSnapshot {
        StandardSnapshot {
            tree: self.tree.to_snapshot(),
            max_height: self.max_height,
            finalized: self.finalized,
            frozen: self.frozen.clone(),
        }
    }

    /// Restores a model from a snapshot.
    ///
    /// The frozen arena is always **rebuilt** from the decoded tree —
    /// never adopted from the snapshot — so a tampered frozen section can
    /// at worst fail the audit's persisted-vs-rebuilt comparison, not skew
    /// predictions.
    pub fn from_snapshot(snap: &StandardSnapshot) -> Result<Self, crate::tree::SnapshotError> {
        let mut tree = Tree::from_snapshot(&snap.tree)?;
        let index = snap.finalized.then(|| ContextIndex::full_paths(&mut tree));
        let strategy = index.as_ref().map_or(MatchStrategy::FrozenScan, |ix| {
            choose_strategy(ix.len(), ix.occupancy())
        });
        let frozen = snap.finalized.then(|| tree.freeze(None));
        Ok(Self {
            tree,
            max_height: snap.max_height,
            max_order: snap
                .max_height
                .map_or(usize::from(u8::MAX), |h| usize::from(h).max(1)),
            finalized: snap.finalized,
            index,
            frozen,
            strategy,
        })
    }

    /// The frozen serving arena, if finalized.
    pub fn frozen(&self) -> Option<&FrozenTree> {
        self.frozen.as_ref()
    }

    /// Test/bench hook: overrides the adaptive strategy choice. Not part of
    /// the public API.
    #[doc(hidden)]
    pub fn force_strategy(&mut self, strategy: MatchStrategy) {
        self.strategy = strategy;
    }

    /// The longest predictive context match, served from the frozen arena
    /// when one exists (frozen indices equal [`NodeId`]s — freezing
    /// compacts first). Tallies which matching mechanism answered into
    /// `usage`.
    fn matched_node(&self, context: &[UrlId], usage: &mut PredictUsage) -> Option<NodeId> {
        if let Some(frozen) = &self.frozen {
            usage.index_fast += 1;
            if self.strategy == MatchStrategy::FingerprintIndex {
                if let Some(index) = &self.index {
                    let mut hashes = ContextHashes::new();
                    return index.longest_predictive(
                        &self.tree,
                        context,
                        self.max_order,
                        &mut hashes,
                    );
                }
            }
            return frozen
                .longest_predictive(context, self.max_order)
                .map(NodeId);
        }
        match &self.index {
            Some(index) => {
                usage.index_fast += 1;
                let mut hashes = ContextHashes::new();
                index.longest_predictive(&self.tree, context, self.max_order, &mut hashes)
            }
            None => {
                usage.index_fallback += 1;
                self.tree.longest_predictive_match(context, self.max_order)
            }
        }
    }

    /// Pointer-arena prediction path: the fingerprint/descend walk over the
    /// heap tree, bypassing the frozen arrays. Kept as the bench comparator
    /// for `frozen_ns_per_click` vs `pointer_ns_per_click`. Not part of the
    /// public API.
    #[doc(hidden)]
    pub fn predict_pointer(
        &self,
        context: &[UrlId],
        out: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) {
        out.clear();
        if context.is_empty() {
            return;
        }
        let node = match &self.index {
            Some(index) => {
                let mut hashes = ContextHashes::new();
                index.longest_predictive(&self.tree, context, self.max_order, &mut hashes)
            }
            None => self.tree.longest_predictive_match(context, self.max_order),
        };
        let Some(node) = node else { return };
        let parent_count = self.tree.node(node).count;
        if parent_count == 0 {
            return;
        }
        usage.used_paths.push(node);
        for (url, child, count) in self.tree.children_of(node) {
            out.push(Prediction::new(url, count as f64 / parent_count as f64));
            usage.used_nodes.push(child);
        }
        rank_predictions(out, usize::MAX);
    }

    /// Reference prediction path: the original descend-per-suffix walk,
    /// kept as the ground truth the hashed fast path is property-tested
    /// against.
    pub fn predict_reference(&self, context: &[UrlId], out: &mut Vec<Prediction>) {
        out.clear();
        if context.is_empty() {
            return;
        }
        let Some(node) = self.tree.longest_predictive_match(context, self.max_order) else {
            return;
        };
        let parent_count = self.tree.node(node).count;
        if parent_count == 0 {
            return;
        }
        for (url, _, count) in self.tree.children_of(node) {
            out.push(Prediction::new(url, count as f64 / parent_count as f64));
        }
        rank_predictions(out, usize::MAX);
    }
}

/// A serializable image of a trained [`StandardPpm`] model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StandardSnapshot {
    /// The trained prediction forest.
    pub tree: crate::tree::TreeSnapshot,
    /// Branch height cap (`None` = unbounded).
    pub max_height: Option<u8>,
    /// Whether [`Predictor::finalize`] had run.
    pub finalized: bool,
    /// The frozen arena as it was when saved (format v2+). Loading rebuilds
    /// the serving arena from `tree`; this copy exists so `pbppm audit` can
    /// cross-check what was persisted against the rebuild.
    pub frozen: Option<crate::frozen::FrozenTree>,
}

impl Predictor for StandardPpm {
    fn kind(&self) -> ModelKind {
        ModelKind::Standard {
            max_height: self.max_height,
        }
    }

    fn train_session(&mut self, session: &[UrlId]) {
        debug_assert!(!self.finalized, "train_session after finalize");
        let h = self
            .max_height
            .map_or(usize::from(u8::MAX), usize::from)
            .max(1);
        for start in 0..session.len() {
            self.tree.insert_path(&session[start..], h);
        }
    }

    fn finalize(&mut self) {
        let index = ContextIndex::full_paths(&mut self.tree);
        self.strategy = choose_strategy(index.len(), index.occupancy());
        self.index = Some(index);
        self.frozen = Some(self.tree.freeze(None));
        self.finalized = true;
        crate::verify::runtime_audit(
            &crate::verify::ModelRef::Standard(self),
            "StandardPpm::finalize",
        );
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        out.clear();
        if context.is_empty() {
            return;
        }
        let Some(node) = self.matched_node(context, usage) else {
            return;
        };
        if let Some(frozen) = &self.frozen {
            // Serve the vote loop from the frozen CSR row: the children are
            // adjacent and all alive, so this is one linear pass. The whole
            // row votes, so usage records the row once (`used_child_rows`)
            // instead of pushing every child, and the row's URL keys are
            // distinct by construction, so ranking can skip the dedup set.
            let parent_count = frozen.count(node.0);
            if parent_count == 0 {
                return;
            }
            usage.used_paths.push(node);
            usage.used_child_rows.push(node);
            for &(url, child) in frozen.children(node.0) {
                out.push(Prediction::new(
                    url,
                    frozen.count(child) as f64 / parent_count as f64,
                ));
            }
            crate::predictor::rank_distinct_predictions(out);
            return;
        }
        let parent_count = self.tree.node(node).count;
        if parent_count == 0 {
            return;
        }
        usage.used_paths.push(node);
        for (url, child, count) in self.tree.children_of(node) {
            out.push(Prediction::new(url, count as f64 / parent_count as f64));
            usage.used_nodes.push(child);
        }
        rank_predictions(out, usize::MAX);
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        for &id in &usage.used_paths {
            self.tree.mark_path_used(id);
        }
        for &id in &usage.used_nodes {
            self.tree.mark_used(id);
        }
        for &id in &usage.used_child_rows {
            self.tree.mark_children_used(id);
        }
    }

    fn frozen(&self) -> Option<&crate::frozen::FrozenTree> {
        self.frozen.as_ref()
    }

    fn match_strategy(&self) -> Option<MatchStrategy> {
        self.frozen.as_ref().map(|_| self.strategy)
    }

    fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    fn stats(&self) -> ModelStats {
        let stats = ModelStats::of_tree(&self.tree);
        match &self.index {
            Some(index) => stats.with_index(index),
            None => stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn frozen_predict_matches_pointer_predict_under_both_strategies() {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[u(0), u(1), u(2), u(3)]);
        m.train_session(&[u(0), u(1), u(4)]);
        m.train_session(&[u(2), u(3), u(1)]);
        m.finalize();
        let contexts = [
            vec![u(0)],
            vec![u(0), u(1)],
            vec![u(9), u(0), u(1)],
            vec![u(2), u(3)],
            vec![u(7)],
        ];
        for strategy in [MatchStrategy::FrozenScan, MatchStrategy::FingerprintIndex] {
            m.force_strategy(strategy);
            for ctx in &contexts {
                let (mut frozen_out, mut pointer_out) = (Vec::new(), Vec::new());
                let mut usage = PredictUsage::default();
                m.predict_ro(ctx, &mut frozen_out, &mut usage);
                m.predict_pointer(ctx, &mut pointer_out, &mut PredictUsage::default());
                assert_eq!(frozen_out, pointer_out, "{strategy:?} ctx {ctx:?}");
            }
        }
    }

    #[test]
    fn sparse_full_paths_index_selects_frozen_scan() {
        // Every full root path is unique in a trie, so the full-paths index
        // averages one entry per bucket: the adaptive selector must keep
        // standard PPM off the hashing path.
        let mut m = StandardPpm::unbounded();
        for s in 0..20u32 {
            m.train_session(&[u(s), u(s + 100), u(s + 200)]);
        }
        m.finalize();
        assert_eq!(m.strategy, MatchStrategy::FrozenScan);
    }

    /// The paper's Figure 1 (left): standard PPM for the access sequence
    /// `A B C A' B' C'` stores a branch from every position.
    #[test]
    fn figure1_left_shape() {
        // A=0 B=1 C=2 A'=3 B'=4 C'=5, max height 4 as in the figure.
        let mut m = StandardPpm::new(Some(4));
        m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        m.finalize();
        // Six roots, one per position.
        assert_eq!(m.tree().root_count(), 6);
        // Branch from A holds A B C A' (height 4).
        assert!(m.tree().descend(&[u(0), u(1), u(2), u(3)]).is_some());
        assert!(m.tree().descend(&[u(0), u(1), u(2), u(3), u(4)]).is_none());
        // Total nodes: 4 + 4 + 4 + 3 + 2 + 1 = 18.
        assert_eq!(m.node_count(), 18);
    }

    #[test]
    fn predicts_next_url_with_correct_probability() {
        let mut m = StandardPpm::unbounded();
        // After A: B twice, C once.
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(2)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].url, u(1));
        assert!((out[0].prob - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(out[1].url, u(2));
        assert!((out[1].prob - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn longest_match_beats_shorter_contexts() {
        let mut m = StandardPpm::unbounded();
        // Globally after B, C is most common; but after A B, D always follows.
        m.train_session(&[u(1), u(2)]); // B C
        m.train_session(&[u(1), u(2)]);
        m.train_session(&[u(0), u(1), u(3)]); // A B D
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0), u(1)], &mut out);
        assert_eq!(out[0].url, u(3), "order-2 context must win");
        assert!((out[0].prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn falls_back_to_shorter_suffix_when_long_context_unknown() {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[u(1), u(2)]);
        m.finalize();
        let mut out = Vec::new();
        // u(9) was never seen; the suffix [u(1)] still matches.
        m.predict(&[u(9), u(1)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].url, u(2));
    }

    #[test]
    fn unknown_context_predicts_nothing() {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[u(1), u(2)]);
        m.finalize();
        let mut out = vec![Prediction::new(u(0), 1.0)];
        m.predict(&[u(7)], &mut out);
        assert!(out.is_empty(), "out must be cleared and left empty");
        m.predict(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_session_is_ignored() {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[]);
        m.finalize();
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn height_limit_bounds_prediction_order() {
        let mut m = StandardPpm::new(Some(2));
        m.train_session(&[u(0), u(1), u(2)]);
        m.finalize();
        // Branch from 0 holds only 0->1; matching context [0,1] must use the
        // suffix [1] (branch 1->2), not a depth-3 path.
        let mut out = Vec::new();
        m.predict(&[u(0), u(1)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].url, u(2));
    }

    #[test]
    fn node_count_grows_with_distinct_subsequences() {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[u(0), u(1), u(2)]);
        let n1 = m.node_count();
        m.train_session(&[u(0), u(1), u(2)]); // identical: no growth
        assert_eq!(m.node_count(), n1);
        m.train_session(&[u(0), u(1), u(3)]); // one new leaf + suffixes
        assert!(m.node_count() > n1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut m = StandardPpm::new(Some(4));
        m.train_session(&[u(0), u(1), u(2)]);
        m.train_session(&[u(0), u(1), u(3)]);
        m.finalize();
        let mut before = Vec::new();
        m.predict(&[u(0), u(1)], &mut before);
        let mut back = StandardPpm::from_snapshot(&m.to_snapshot()).unwrap();
        assert_eq!(back.node_count(), m.node_count());
        let mut after = Vec::new();
        back.predict(&[u(0), u(1)], &mut after);
        assert_eq!(before, after);
    }

    #[test]
    fn prediction_marks_paths_used() {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(2), u(3)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        let s = m.stats();
        assert!(s.used_paths >= 1);
        assert!(s.used_paths < s.total_paths);
    }
}
