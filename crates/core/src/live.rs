//! Live (prequential) self-evaluation for the serving loop.
//!
//! The offline engine ([`crate::eval::evaluate`]) measures prediction
//! quality after the fact; a long-running server wants the same numbers
//! *while it runs*. [`LiveEval`] implements test-then-train scoring: each
//! incoming session is scored against the predictions the **current**
//! model makes for its own prefixes — the same read-only vote path
//! ([`Predictor::predict_ro`]) the offline engine uses, with identical
//! context/threshold/k/horizon semantics — *before* the session is
//! trained on. Scoring a session the model has already absorbed would
//! flatter it; scoring first is the standard prequential protocol.
//!
//! Two aggregates are kept:
//!
//! * **lifetime** counters ([`LiveEval::lifetime`]) — every context since
//!   the recorder started, the long-run mean;
//! * a **sliding window** of per-context records ([`LiveEval::window_quality`])
//!   — the last `window` contexts, recomputed exactly from compact
//!   [`ContextRecord`]s (no incremental float drift).
//!
//! Their divergence is the drift signal: when the windowed precision@k
//! falls below `drift_fraction` of the lifetime mean (with minimum-sample
//! guards on both sides), [`LiveEval::drifted`] reports `true` and the
//! serve loop degrades its `health`. Per-grade accuracy (keyed on the
//! popularity grade of the *actual* next URL) localizes which popularity
//! band is drifting — the paper's grades G0–G3 are exactly the strata a
//! popularity shift moves.

use crate::eval::{EvalConfig, PredictionQuality};
use crate::interner::UrlId;
use crate::popularity::PopularityTable;
use crate::predictor::{PredictUsage, Prediction, Predictor};
use std::collections::VecDeque;

/// Parameters for the live evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveEvalConfig {
    /// Scoring semantics (threshold, k, horizon) — shared with the
    /// offline engine so live and offline numbers are comparable.
    pub eval: EvalConfig,
    /// Context prefix cap handed to the model, like the offline engine's
    /// `context_cap` argument.
    pub context_cap: usize,
    /// Sliding-window size in *contexts* (clicks with a successor), not
    /// sessions; at least 1.
    pub window: usize,
    /// Degrade when windowed precision@k `<` this fraction of the
    /// lifetime precision@k (0.5 = "half as accurate as usual").
    pub drift_fraction: f64,
    /// Both the window and the lifetime must hold at least this many
    /// contexts before drift is ever signalled — early noise is not drift.
    pub min_contexts: u64,
}

impl Default for LiveEvalConfig {
    fn default() -> Self {
        Self {
            eval: EvalConfig::default(),
            context_cap: 12,
            window: 512,
            drift_fraction: 0.5,
            min_contexts: 64,
        }
    }
}

/// One evaluated context, compact enough to keep thousands around: the
/// window quality is recomputed exactly from these (u64 counter folds, no
/// accumulated float error from evicted entries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextRecord {
    /// Predictions emitted above the threshold (after the k cutoff).
    pub emitted: u16,
    /// Rank (0-based) of the actual next URL among the emitted
    /// predictions, if present — carries hits@1, hits@k and the
    /// reciprocal rank.
    pub rank: Option<u16>,
    /// Any emitted prediction was used within the horizon.
    pub useful: bool,
    /// Popularity grade level (0–3) of the actual next URL, when a
    /// popularity table was available at scoring time.
    pub grade: Option<u8>,
}

/// Per-grade lifetime accuracy: contexts whose true next URL had this
/// grade, and how many of them were hits@k.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GradeAccuracy {
    /// Contexts observed for this grade.
    pub contexts: u64,
    /// Of those, contexts where the true next URL was in the top k.
    pub hits_at_k: u64,
}

impl GradeAccuracy {
    /// hits@k over contexts; 0 when nothing was observed.
    pub fn precision_at_k(&self) -> f64 {
        if self.contexts == 0 {
            0.0
        } else {
            self.hits_at_k as f64 / self.contexts as f64
        }
    }
}

/// The serving loop's prequential scorer. See the module docs.
pub struct LiveEval {
    cfg: LiveEvalConfig,
    records: VecDeque<ContextRecord>,
    lifetime: PredictionQuality,
    by_grade: [GradeAccuracy; 4],
    sessions: u64,
    scratch: Vec<Prediction>,
    usage: PredictUsage,
}

impl LiveEval {
    /// A fresh evaluator with the given configuration. `min_contexts` is
    /// clamped to the window size — a window that can never fill past the
    /// guard would otherwise disable drift detection permanently.
    pub fn new(cfg: LiveEvalConfig) -> Self {
        let window = cfg.window.max(1);
        Self {
            cfg: LiveEvalConfig {
                window,
                min_contexts: cfg.min_contexts.min(window as u64),
                ..cfg
            },
            records: VecDeque::with_capacity(window),
            lifetime: PredictionQuality::default(),
            by_grade: [GradeAccuracy::default(); 4],
            sessions: 0,
            scratch: Vec::new(),
            usage: PredictUsage::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LiveEvalConfig {
        &self.cfg
    }

    /// Sessions scored so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Lifetime quality counters (every context ever scored).
    pub fn lifetime(&self) -> &PredictionQuality {
        &self.lifetime
    }

    /// Per-grade lifetime accuracy, indexed by grade level 0–3. Contexts
    /// scored without a popularity table appear in no bucket.
    pub fn by_grade(&self) -> &[GradeAccuracy; 4] {
        &self.by_grade
    }

    /// Contexts currently in the sliding window.
    pub fn window_len(&self) -> usize {
        self.records.len()
    }

    /// Quality over the sliding window, folded exactly from the retained
    /// records. O(window), called on demand (metrics/health), not per
    /// request.
    pub fn window_quality(&self) -> PredictionQuality {
        let mut q = PredictionQuality::default();
        for r in &self.records {
            q.contexts += 1;
            q.emitted += u64::from(r.emitted);
            if r.emitted > 0 {
                q.covered += 1;
            }
            if let Some(rank) = r.rank {
                q.hits_at_k += 1;
                if rank == 0 {
                    q.hits_at_1 += 1;
                }
                q.reciprocal_rank_sum += 1.0 / f64::from(rank + 1);
            }
            if r.useful {
                q.useful_at_k += 1;
            }
        }
        q
    }

    /// True when the windowed precision@k has fallen below
    /// `drift_fraction` of the lifetime mean — with both samples past
    /// `min_contexts`, and only when the lifetime mean is itself nonzero
    /// (a model that never predicted well cannot "drift").
    pub fn drifted(&self) -> bool {
        let min = self.cfg.min_contexts;
        if self.lifetime.contexts < min || (self.records.len() as u64) < min {
            return false;
        }
        let long_run = self.lifetime.precision_at_k();
        if long_run <= 0.0 {
            return false;
        }
        self.window_quality().precision_at_k() < self.cfg.drift_fraction * long_run
    }

    /// Scores one incoming session against `model`'s current predictions
    /// — call *before* training the model on it (test-then-train). Uses
    /// the read-only vote path and discards the usage bookkeeping:
    /// self-evaluation must not count as real path utilization.
    ///
    /// The scoring loop mirrors [`crate::eval::evaluate`] exactly (same
    /// context cap, threshold, k cutoff, horizon window), so the window
    /// numbers are directly comparable to an offline run on the same
    /// clicks. `grades`, when given, buckets each context by the grade of
    /// its true next URL. Returns how many contexts the session produced.
    pub fn observe_session(
        &mut self,
        model: &dyn Predictor,
        grades: Option<&PopularityTable>,
        urls: &[UrlId],
    ) -> usize {
        if urls.len() < 2 {
            if !urls.is_empty() {
                self.sessions += 1;
            }
            return 0;
        }
        self.sessions += 1;
        let cfg = self.cfg.eval;
        let mut produced = 0usize;
        for i in 0..urls.len() - 1 {
            let lo = (i + 1).saturating_sub(self.cfg.context_cap.max(1));
            self.scratch.clear();
            self.usage.clear();
            model.predict_ro(&urls[lo..=i], &mut self.scratch, &mut self.usage);
            self.scratch.retain(|p| p.prob >= cfg.prob_threshold);
            self.scratch.truncate(cfg.k.max(1));

            let next = urls[i + 1];
            #[allow(clippy::cast_possible_truncation)] // clamped to u16::MAX first
            let rank = self
                .scratch
                .iter()
                .position(|p| p.url == next)
                .map(|r| r.min(usize::from(u16::MAX)) as u16);
            let horizon_end = i
                .saturating_add(1)
                .saturating_add(cfg.horizon)
                .min(urls.len());
            let upcoming = &urls[i + 1..horizon_end];
            #[allow(clippy::cast_possible_truncation)] // clamped to u16::MAX first
            let record = ContextRecord {
                emitted: self.scratch.len().min(usize::from(u16::MAX)) as u16,
                rank,
                useful: self.scratch.iter().any(|p| upcoming.contains(&p.url)),
                grade: grades.map(|g| g.grade(next).level()),
            };
            self.push(record);
            produced += 1;
        }
        produced
    }

    /// Appends one context record to both aggregates, evicting the oldest
    /// window entry at capacity.
    fn push(&mut self, r: ContextRecord) {
        self.lifetime.contexts += 1;
        self.lifetime.emitted += u64::from(r.emitted);
        if r.emitted > 0 {
            self.lifetime.covered += 1;
        }
        if let Some(rank) = r.rank {
            self.lifetime.hits_at_k += 1;
            if rank == 0 {
                self.lifetime.hits_at_1 += 1;
            }
            self.lifetime.reciprocal_rank_sum += 1.0 / f64::from(rank + 1);
        }
        if r.useful {
            self.lifetime.useful_at_k += 1;
        }
        if let Some(level) = r.grade {
            let slot = &mut self.by_grade[usize::from(level.min(3))];
            slot.contexts += 1;
            if r.rank.is_some() {
                slot.hits_at_k += 1;
            }
        }
        if self.records.len() == self.cfg.window {
            self.records.pop_front();
        }
        self.records.push_back(r);
    }
}

/// Traffic increment per context: extra documents pushed that were *not*
/// the next click, per evaluated context — the paper's network-cost
/// counterpart to precision. 0 when no contexts were evaluated.
pub fn traffic_increment(q: &PredictionQuality) -> f64 {
    if q.contexts == 0 {
        0.0
    } else {
        (q.emitted.saturating_sub(q.hits_at_k)) as f64 / q.contexts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::pb::{PbConfig, PbPpm};
    use crate::pb_online::OnlinePbPpm;
    use crate::popularity::PopularityTable;
    use crate::prune::PruneConfig;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn cfg() -> PbConfig {
        PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        }
    }

    fn trained_model(sessions: &[Vec<UrlId>]) -> PbPpm {
        let mut counts = PopularityTable::builder();
        for s in sessions {
            for &x in s {
                counts.record(x);
            }
        }
        let mut m = PbPpm::new(counts.build(), cfg());
        for s in sessions {
            m.train_session(s);
        }
        m.finalize();
        m
    }

    /// The acceptance-criterion core: scoring the same held-out clicks
    /// live (per session, window large enough to hold them all) and
    /// offline (one `evaluate` call) must produce identical counters —
    /// both run the same predict path with the same semantics.
    #[test]
    fn agrees_with_offline_evaluate_exactly() {
        let train: Vec<Vec<UrlId>> = (0..40)
            .map(|i| vec![u(0), u(1 + i % 3), u(4), u(5 + i % 2)])
            .collect();
        let mut model = trained_model(&train);
        let held_out: Vec<Vec<UrlId>> = (0..15)
            .map(|i| vec![u(0), u(1 + (i + 1) % 4), u(4), u(6)])
            .collect();

        let live_cfg = LiveEvalConfig {
            window: 10_000,
            ..LiveEvalConfig::default()
        };
        let mut live = LiveEval::new(live_cfg);
        for s in &held_out {
            live.observe_session(&model, Some(model.popularity()), s);
        }
        let offline = evaluate(&mut model, &held_out, live_cfg.context_cap, &live_cfg.eval);

        assert_eq!(live.window_quality(), offline);
        assert_eq!(*live.lifetime(), offline);
        assert_eq!(live.sessions(), held_out.len() as u64);
    }

    #[test]
    fn window_evicts_but_lifetime_keeps_counting() {
        let train: Vec<Vec<UrlId>> = (0..20).map(|_| vec![u(0), u(1)]).collect();
        let model = trained_model(&train);
        let mut live = LiveEval::new(LiveEvalConfig {
            window: 3,
            ..LiveEvalConfig::default()
        });
        for _ in 0..10 {
            live.observe_session(&model, None, &[u(0), u(1)]);
        }
        assert_eq!(live.window_len(), 3);
        assert_eq!(live.window_quality().contexts, 3);
        assert_eq!(live.lifetime().contexts, 10);
        assert_eq!(
            live.lifetime().hits_at_1,
            10,
            "model predicts 0→1 perfectly"
        );
    }

    #[test]
    fn drift_fires_when_accuracy_collapses() {
        let train: Vec<Vec<UrlId>> = (0..20).map(|_| vec![u(0), u(1)]).collect();
        let model = trained_model(&train);
        let mut live = LiveEval::new(LiveEvalConfig {
            window: 8,
            min_contexts: 8,
            drift_fraction: 0.5,
            ..LiveEvalConfig::default()
        });
        // A long accurate phase, then the traffic shifts to 0→2, which the
        // model keeps predicting as 0→1: windowed precision collapses.
        for _ in 0..32 {
            live.observe_session(&model, None, &[u(0), u(1)]);
        }
        assert!(!live.drifted(), "accurate phase must not signal drift");
        for _ in 0..8 {
            live.observe_session(&model, None, &[u(0), u(2)]);
        }
        assert!(live.drifted(), "window all-miss vs high lifetime mean");
    }

    #[test]
    fn drift_needs_minimum_samples_and_a_nonzero_baseline() {
        let model = trained_model(&[vec![u(0), u(1)]]);
        let mut live = LiveEval::new(LiveEvalConfig {
            window: 4,
            min_contexts: 16,
            ..LiveEvalConfig::default()
        });
        // Below min_contexts: never drifted, however bad the window.
        for _ in 0..4 {
            live.observe_session(&model, None, &[u(0), u(9)]);
        }
        assert!(!live.drifted());
        // An always-wrong model has a zero lifetime mean: not "drift".
        let mut always_wrong = LiveEval::new(LiveEvalConfig {
            window: 4,
            min_contexts: 2,
            ..LiveEvalConfig::default()
        });
        for _ in 0..32 {
            always_wrong.observe_session(&model, None, &[u(0), u(9)]);
        }
        assert!(!always_wrong.drifted(), "never-right is not newly-wrong");
    }

    #[test]
    fn per_grade_buckets_split_on_the_true_next_url() {
        let train: Vec<Vec<UrlId>> = (0..30).map(|_| vec![u(0), u(1)]).collect();
        let model = trained_model(&train);
        let pop = model.popularity().clone();
        let g1 = usize::from(pop.grade(u(1)).level());
        let mut live = LiveEval::new(LiveEvalConfig::default());
        live.observe_session(&model, Some(&pop), &[u(0), u(1)]);
        assert_eq!(live.by_grade()[g1].contexts, 1);
        assert_eq!(live.by_grade()[g1].hits_at_k, 1);
        let total: u64 = live.by_grade().iter().map(|g| g.contexts).sum();
        assert_eq!(total, 1, "exactly one bucket counted the context");
        // Without a table, no bucket moves.
        live.observe_session(&model, None, &[u(0), u(1)]);
        let total: u64 = live.by_grade().iter().map(|g| g.contexts).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn untrained_online_model_scores_zero_coverage_without_panic() {
        let online = OnlinePbPpm::new(cfg(), 100, 10);
        let mut live = LiveEval::new(LiveEvalConfig::default());
        let n = live.observe_session(&online, None, &[u(0), u(1), u(2)]);
        assert_eq!(n, 2);
        let q = live.window_quality();
        assert_eq!(q.contexts, 2);
        assert_eq!(q.covered, 0);
        assert_eq!(traffic_increment(&q), 0.0);
    }

    #[test]
    fn traffic_increment_counts_wasted_pushes() {
        let q = PredictionQuality {
            contexts: 10,
            emitted: 30,
            hits_at_k: 10,
            ..PredictionQuality::default()
        };
        assert!((traffic_increment(&q) - 2.0).abs() < 1e-12);
        assert_eq!(traffic_increment(&PredictionQuality::default()), 0.0);
    }

    #[test]
    fn short_sessions_produce_no_contexts() {
        let model = trained_model(&[vec![u(0), u(1)]]);
        let mut live = LiveEval::new(LiveEvalConfig::default());
        assert_eq!(live.observe_session(&model, None, &[]), 0);
        assert_eq!(live.observe_session(&model, None, &[u(0)]), 0);
        assert_eq!(live.lifetime().contexts, 0);
        assert_eq!(live.sessions(), 1, "a 1-view session still counts as seen");
    }
}
