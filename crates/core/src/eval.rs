//! Offline prediction-quality evaluation.
//!
//! The paper measures prefetching end to end (hit ratios through caches);
//! model development usually wants the *prediction* quality isolated from
//! cache dynamics. This module replays held-out sessions against a trained
//! [`Predictor`] and reports the standard ranking metrics: coverage,
//! precision@1/@k, mean reciprocal rank, and a prefetching-oriented
//! "useful@k" (the next `horizon` views, not just the immediate next one,
//! count — a pushed document helps whenever it is used before the session
//! ends).

use crate::interner::UrlId;
use crate::predictor::{Prediction, Predictor};
use serde::{Deserialize, Serialize};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Only predictions with at least this probability are considered
    /// (use the policy threshold to mirror deployment, 0.0 to see raw
    /// model quality).
    pub prob_threshold: f64,
    /// Ranking cutoff for the @k metrics.
    pub k: usize,
    /// How many upcoming views count as "useful" for `useful_at_k`
    /// (`usize::MAX` = until the session ends).
    pub horizon: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            prob_threshold: 0.0,
            k: 5,
            horizon: usize::MAX,
        }
    }
}

/// Aggregated prediction-quality counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionQuality {
    /// Contexts evaluated (views that have a successor in their session).
    pub contexts: u64,
    /// Contexts with at least one prediction above the threshold.
    pub covered: u64,
    /// Contexts whose top prediction was the actual next view.
    pub hits_at_1: u64,
    /// Contexts whose top-k predictions contained the actual next view.
    pub hits_at_k: u64,
    /// Contexts where any top-k prediction appeared within the horizon.
    pub useful_at_k: u64,
    /// Sum of reciprocal ranks of the actual next view (0 when absent).
    pub reciprocal_rank_sum: f64,
    /// Total predictions emitted above the threshold.
    pub emitted: u64,
}

impl PredictionQuality {
    /// Fraction of contexts with any prediction.
    pub fn coverage(&self) -> f64 {
        ratio(self.covered, self.contexts)
    }

    /// P(top prediction correct) over all contexts.
    pub fn precision_at_1(&self) -> f64 {
        ratio(self.hits_at_1, self.contexts)
    }

    /// P(next view in top k) over all contexts.
    pub fn precision_at_k(&self) -> f64 {
        ratio(self.hits_at_k, self.contexts)
    }

    /// P(any top-k prediction used within the horizon) over all contexts.
    pub fn useful_rate(&self) -> f64 {
        ratio(self.useful_at_k, self.contexts)
    }

    /// Mean reciprocal rank of the actual next view.
    pub fn mrr(&self) -> f64 {
        if self.contexts == 0 {
            0.0
        } else {
            self.reciprocal_rank_sum / self.contexts as f64
        }
    }

    /// Average predictions emitted per context.
    pub fn emitted_per_context(&self) -> f64 {
        if self.contexts == 0 {
            0.0
        } else {
            self.emitted as f64 / self.contexts as f64
        }
    }
}

#[inline]
fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Replays `sessions` against `model` and aggregates quality counters.
///
/// For every view with a successor, the model is asked to predict from the
/// session prefix (capped at `context_cap` URLs); metrics compare against
/// the actual continuation.
pub fn evaluate<S: AsRef<[UrlId]>>(
    model: &mut dyn Predictor,
    sessions: &[S],
    context_cap: usize,
    cfg: &EvalConfig,
) -> PredictionQuality {
    let mut q = PredictionQuality::default();
    let mut out: Vec<Prediction> = Vec::new();
    for s in sessions {
        let urls = s.as_ref();
        for i in 0..urls.len().saturating_sub(1) {
            q.contexts += 1;
            let lo = (i + 1).saturating_sub(context_cap.max(1));
            model.predict(&urls[lo..=i], &mut out);
            out.retain(|p| p.prob >= cfg.prob_threshold);
            out.truncate(cfg.k.max(1));
            q.emitted += out.len() as u64;
            if out.is_empty() {
                continue;
            }
            q.covered += 1;
            let next = urls[i + 1];
            if out[0].url == next {
                q.hits_at_1 += 1;
            }
            if let Some(rank) = out.iter().position(|p| p.url == next) {
                q.hits_at_k += 1;
                q.reciprocal_rank_sum += 1.0 / (rank + 1) as f64;
            }
            let horizon_end = i
                .saturating_add(1)
                .saturating_add(cfg.horizon)
                .min(urls.len());
            let upcoming = &urls[i + 1..horizon_end];
            if out.iter().any(|p| upcoming.contains(&p.url)) {
                q.useful_at_k += 1;
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order1::Order1Markov;
    use crate::standard::StandardPpm;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn perfect_model_scores_one() {
        let mut m = StandardPpm::unbounded();
        let session = vec![u(0), u(1), u(2), u(3)];
        m.train_session(&session);
        m.finalize();
        let q = evaluate(&mut m, &[session], 12, &EvalConfig::default());
        assert_eq!(q.contexts, 3);
        assert_eq!(q.covered, 3);
        assert!((q.precision_at_1() - 1.0).abs() < 1e-12);
        assert!((q.precision_at_k() - 1.0).abs() < 1e-12);
        assert!((q.mrr() - 1.0).abs() < 1e-12);
        assert!((q.useful_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn untrained_model_scores_zero_coverage() {
        let mut m = StandardPpm::unbounded();
        m.finalize();
        let q = evaluate(&mut m, &[vec![u(0), u(1)]], 12, &EvalConfig::default());
        assert_eq!(q.contexts, 1);
        assert_eq!(q.covered, 0);
        assert_eq!(q.coverage(), 0.0);
        assert_eq!(q.precision_at_1(), 0.0);
    }

    #[test]
    fn rank_and_k_cutoff() {
        let mut m = Order1Markov::new();
        // After 0: 1 (x3), 2 (x2), 3 (x1).
        m.train_session(&[u(0), u(1), u(0), u(1), u(0), u(1)]);
        m.train_session(&[u(0), u(2), u(0), u(2)]);
        m.train_session(&[u(0), u(3)]);
        m.finalize();
        // Eval session where the truth is the *second*-ranked URL.
        let cfg = EvalConfig {
            k: 2,
            ..EvalConfig::default()
        };
        let q = evaluate(&mut m, &[vec![u(0), u(2)]], 12, &cfg);
        assert_eq!(q.hits_at_1, 0);
        assert_eq!(q.hits_at_k, 1);
        assert!((q.mrr() - 0.5).abs() < 1e-12);
        // With k = 1, the second-ranked truth is missed.
        let cfg1 = EvalConfig {
            k: 1,
            ..EvalConfig::default()
        };
        let q1 = evaluate(&mut m, &[vec![u(0), u(2)]], 12, &cfg1);
        assert_eq!(q1.hits_at_k, 0);
    }

    #[test]
    fn threshold_filters_low_probability_predictions() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(1), u(0), u(1), u(0), u(2)]);
        m.finalize();
        // p(1)=2/3, p(2)=1/3: a 0.5 threshold keeps only url 1.
        let cfg = EvalConfig {
            prob_threshold: 0.5,
            ..EvalConfig::default()
        };
        let q = evaluate(&mut m, &[vec![u(0), u(2)]], 12, &cfg);
        assert_eq!(q.covered, 1);
        assert_eq!(q.emitted, 1);
        assert_eq!(q.hits_at_k, 0, "the truth was filtered out");
    }

    #[test]
    fn horizon_controls_usefulness() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(9)]);
        m.finalize();
        // The model always predicts 9 after 0; the eval session visits 9
        // two steps later.
        let session = vec![u(0), u(5), u(9)];
        let near = EvalConfig {
            horizon: 1,
            ..EvalConfig::default()
        };
        let far = EvalConfig {
            horizon: 5,
            ..EvalConfig::default()
        };
        let qn = evaluate(&mut m, std::slice::from_ref(&session), 12, &near);
        let qf = evaluate(&mut m, &[session], 12, &far);
        // context at view 0: prediction 9; within 1 view -> only u(5): miss.
        assert_eq!(qn.useful_at_k, 0);
        // within 5 views -> u(5), u(9): hit.
        assert_eq!(qf.useful_at_k, 1);
    }

    #[test]
    fn empty_input_is_safe() {
        let mut m = StandardPpm::unbounded();
        m.finalize();
        let q = evaluate(
            &mut m,
            &Vec::<Vec<UrlId>>::new(),
            12,
            &EvalConfig::default(),
        );
        assert_eq!(q, PredictionQuality::default());
        assert_eq!(q.mrr(), 0.0);
        assert_eq!(q.emitted_per_context(), 0.0);
    }

    /// Every derived ratio must report 0 — never NaN — on zero
    /// denominators, so downstream JSON stays clean numbers.
    #[test]
    fn zero_context_ratios_are_zero_not_nan() {
        let q = PredictionQuality::default();
        for value in [
            q.coverage(),
            q.precision_at_1(),
            q.precision_at_k(),
            q.useful_rate(),
            q.mrr(),
            q.emitted_per_context(),
        ] {
            assert_eq!(value, 0.0, "zero-denominator ratio must be exactly 0");
        }
        // The serialized form carries no NaN either (serde_json turns
        // non-finite floats into null, which breaks consumers).
        let json = serde_json::to_string(&q).unwrap();
        assert!(!json.contains("null") && !json.contains("NaN"), "{json}");
    }

    /// Degenerate parameters — single-view sessions, zero context cap,
    /// zero k, zero horizon — must not panic or divide by zero.
    #[test]
    fn degenerate_configs_are_safe() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(1)]);
        m.finalize();
        // Single-view sessions produce no contexts at all.
        let q = evaluate(&mut m, &[vec![u(0)]], 12, &EvalConfig::default());
        assert_eq!(q.contexts, 0);
        assert_eq!(q.coverage(), 0.0);
        // Zero cap and zero k are clamped to 1; zero horizon means no
        // view can ever be "useful".
        let cfg = EvalConfig {
            k: 0,
            horizon: 0,
            ..EvalConfig::default()
        };
        let q = evaluate(&mut m, &[vec![u(0), u(1)]], 0, &cfg);
        assert_eq!(q.contexts, 1);
        assert_eq!(q.covered, 1, "k is clamped to 1, not truncated to none");
        assert_eq!(q.useful_at_k, 0, "zero horizon sees no upcoming views");
        assert!(q.mrr().is_finite());
    }
}
