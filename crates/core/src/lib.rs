//! # pbppm-core — prediction models for web prefetching
//!
//! This crate implements the prediction side of *"Popularity-Based PPM: An
//! Effective Web Prefetching Technique for High Accuracy and Low Storage"*
//! (Xin Chen and Xiaodong Zhang, ICPP 2002): three Prediction-by-Partial-Match
//! (PPM) model families built over a shared arena-allocated Markov prediction
//! trie, plus the popularity machinery the paper's contribution rests on.
//!
//! ## Models
//!
//! * [`StandardPpm`] — the classic PPM forest: a branch is rooted at **every**
//!   URL position of every access session, bounded (or unbounded) height.
//!   Simple, accurate, and enormous.
//! * [`LrsPpm`] — the Longest-Repeating-Subsequence model of Pitkow & Pirolli
//!   (USENIX '99): only paths that occur at least twice survive finalization.
//!   Small, but blind to anything that has not yet repeated.
//! * [`PbPpm`] — the paper's contribution. Branch heights are proportional to
//!   the *popularity grade* of the branch's heading URL, new roots are only
//!   created on popularity ascents, special links duplicate popular nodes
//!   under the branch root, and two post-build space optimizations prune the
//!   tree. High accuracy at a fraction of the storage.
//! * [`Order1Markov`] — a first-order Markov baseline used by several of the
//!   related-work systems the paper cites; included as an extra comparator.
//!
//! All models implement the [`Predictor`] trait and can be driven by the
//! trace-driven simulator in `pbppm-sim`.
//!
//! ## Quick example
//!
//! ```
//! use pbppm_core::{Interner, PopularityTable, PbPpm, PbConfig, Predictor};
//!
//! let mut urls = Interner::new();
//! let (a, b, c) = (urls.intern("/index.html"), urls.intern("/docs"), urls.intern("/docs/faq"));
//!
//! // Popularity is learned from the training window (two-pass training).
//! let mut pop = PopularityTable::builder();
//! for _ in 0..100 { pop.record(a); }
//! for _ in 0..10 { pop.record(b); }
//! pop.record(c);
//! let pop = pop.build();
//!
//! let mut model = PbPpm::new(pop, PbConfig::default());
//! for _ in 0..8 { model.train_session(&[a, b, c]); }
//! model.finalize();
//!
//! let mut out = Vec::new();
//! model.predict(&[a], &mut out);
//! assert_eq!(out[0].url, b); // after /index.html the model expects /docs
//! ```

#![forbid(unsafe_code)]

pub mod context_index;
pub mod eval;
pub mod frozen;
pub mod fxhash;
pub mod interner;
pub mod live;
pub mod lrs;
pub mod order1;
pub mod parallel;
pub mod pb;
pub mod pb_online;
pub mod popularity;
pub mod predictor;
pub mod prune;
pub mod publish;
pub mod render;
pub mod snapshot;
pub mod standard;
pub mod stats;
pub mod topn;
pub mod tree;
pub mod verify;

pub use context_index::{ContextHashes, ContextIndex, IndexOccupancy};
pub use eval::{evaluate, EvalConfig, PredictionQuality};
pub use frozen::{choose_strategy, FrozenTree, MatchStrategy};
pub use fxhash::{FxHashMap, FxHashSet};
pub use interner::{Interner, UrlId};
pub use live::{traffic_increment, GradeAccuracy, LiveEval, LiveEvalConfig};
pub use lrs::LrsPpm;
pub use order1::Order1Markov;
pub use parallel::{
    parallel_map, parallel_map_progress, parallel_map_with, parse_threads, partition_ranges,
    resolve_threads, threads_from_env, THREADS_ENV,
};
pub use pb::{PbConfig, PbPpm};
pub use pb_online::OnlinePbPpm;
pub use popularity::{Grade, PopularityBuilder, PopularityTable, PopularityTracker};
pub use predictor::{ModelKind, PredictUsage, Prediction, Predictor};
pub use prune::PruneConfig;
pub use publish::{shard_of, EpochPublisher, EpochReader};
pub use snapshot::{
    CodecError, Generation, ModelImage, SnapshotFile, SnapshotIoError, SnapshotStore,
};
pub use standard::StandardPpm;
pub use stats::ModelStats;
pub use topn::TopN;
pub use tree::{NodeId, Tree};
pub use verify::{
    runtime_audit, runtime_audit_enabled, verify_model, verify_model_with_urls, AuditReport,
    ModelRef, Violation,
};
