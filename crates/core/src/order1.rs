//! First-order Markov baseline.
//!
//! Several of the systems the paper cites in related work (Bestavros'
//! speculation service, Padmanabhan & Mogul, Sarukkai's link prediction)
//! predict from the current URL alone — a first-order Markov chain. It is
//! included as an extra comparator: it is the degenerate `2-PPM` with a
//! dedicated, even cheaper representation (a pair-count table instead of a
//! trie).

use crate::fxhash::FxHashMap;
use crate::interner::UrlId;
use crate::predictor::{rank_predictions, ModelKind, PredictUsage, Prediction, Predictor};
use crate::stats::ModelStats;

/// Transition counts out of one URL.
#[derive(Debug, Clone, Default)]
pub(crate) struct Row {
    pub(crate) total: u64,
    pub(crate) next: FxHashMap<UrlId, u64>,
    pub(crate) used: bool,
}

/// First-order Markov prediction model.
#[derive(Debug, Clone, Default)]
pub struct Order1Markov {
    pub(crate) rows: FxHashMap<UrlId, Row>,
    pub(crate) finalized: bool,
}

impl Order1Markov {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes the model into a canonical (id-sorted) image. As with the
    /// tree models, per-evaluation `used` bookkeeping is not persisted.
    pub fn to_snapshot(&self) -> Order1Snapshot {
        let mut rows: Vec<Order1RowSnapshot> = self
            .rows
            .iter()
            .map(|(&url, row)| {
                let mut next: Vec<(u32, u64)> = row.next.iter().map(|(&u, &c)| (u.0, c)).collect();
                next.sort_unstable();
                Order1RowSnapshot {
                    url: url.0,
                    total: row.total,
                    next,
                }
            })
            .collect();
        rows.sort_unstable_by_key(|r| r.url);
        Order1Snapshot {
            rows,
            finalized: self.finalized,
        }
    }

    /// Restores a model from a snapshot.
    pub fn from_snapshot(snap: &Order1Snapshot) -> Self {
        let mut rows = FxHashMap::default();
        for r in &snap.rows {
            let mut next = FxHashMap::default();
            for &(u, c) in &r.next {
                next.insert(UrlId(u), c);
            }
            rows.insert(
                UrlId(r.url),
                Row {
                    total: r.total,
                    next,
                    used: false,
                },
            );
        }
        Self {
            rows,
            finalized: snap.finalized,
        }
    }
}

/// A serializable image of an [`Order1Markov`] model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order1Snapshot {
    /// Per-source-URL rows, sorted by URL id.
    pub rows: Vec<Order1RowSnapshot>,
    /// Whether [`Predictor::finalize`] had run.
    pub finalized: bool,
}

/// One source URL's transition counts, successors sorted by URL id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order1RowSnapshot {
    /// Interned id of the source URL.
    pub url: u32,
    /// Total transitions observed out of the source URL.
    pub total: u64,
    /// `(successor url, count)` entries sorted by URL id.
    pub next: Vec<(u32, u64)>,
}

impl Predictor for Order1Markov {
    fn kind(&self) -> ModelKind {
        ModelKind::Order1
    }

    fn train_session(&mut self, session: &[UrlId]) {
        debug_assert!(!self.finalized, "train_session after finalize");
        for pair in session.windows(2) {
            let row = self.rows.entry(pair[0]).or_default();
            row.total += 1;
            *row.next.entry(pair[1]).or_default() += 1;
        }
    }

    fn finalize(&mut self) {
        self.finalized = true;
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        out.clear();
        let Some(current) = context.last() else {
            return;
        };
        let Some(row) = self.rows.get(current) else {
            return;
        };
        usage.used_urls.push(*current);
        let total = row.total as f64;
        for (&url, &count) in &row.next {
            out.push(Prediction::new(url, count as f64 / total));
        }
        rank_predictions(out, usize::MAX);
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        for url in &usage.used_urls {
            if let Some(row) = self.rows.get_mut(url) {
                row.used = true;
            }
        }
    }

    /// Storage in "URL nodes": one per source URL plus one per stored
    /// transition (mirrors how a height-2 trie would count).
    fn node_count(&self) -> usize {
        self.rows.len() + self.rows.values().map(|r| r.next.len()).sum::<usize>()
    }

    fn stats(&self) -> ModelStats {
        let total_paths: usize = self.rows.values().map(|r| r.next.len()).sum();
        let used_paths: usize = self
            .rows
            .values()
            .filter(|r| r.used)
            .map(|r| r.next.len())
            .sum();
        ModelStats {
            nodes: self.node_count(),
            roots: self.rows.len(),
            // One edge per stored transition (row → successor).
            edges: total_paths,
            max_depth: if total_paths > 0 {
                2
            } else {
                u8::from(!self.rows.is_empty())
            },
            total_paths,
            used_paths,
            memory_bytes: self.rows.len()
                * (std::mem::size_of::<UrlId>() + std::mem::size_of::<Row>())
                + total_paths * std::mem::size_of::<(UrlId, u64)>(),
            ..ModelStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn learns_transition_probabilities() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(1), u(0), u(1), u(0), u(2)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].url, u(1));
        assert!((out[0].prob - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_deeper_context() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(5), u(0), u(1)]);
        m.train_session(&[u(6), u(0), u(2)]);
        m.finalize();
        let mut a = Vec::new();
        let mut b = Vec::new();
        m.predict(&[u(5), u(0)], &mut a);
        m.predict(&[u(6), u(0)], &mut b);
        assert_eq!(a, b, "only the last URL matters");
    }

    #[test]
    fn node_count_counts_rows_and_transitions() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(1), u(2)]);
        m.finalize();
        // rows: 0, 1; transitions: 0->1, 1->2
        assert_eq!(m.node_count(), 4);
    }

    #[test]
    fn empty_and_unknown_are_safe() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0)]); // single click: no transition
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert!(out.is_empty());
        m.predict(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(1), u(0), u(2), u(0), u(1)]);
        m.train_session(&[u(3), u(0), u(1)]);
        m.finalize();
        let back = Order1Markov::from_snapshot(&m.to_snapshot());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for ctx in [&[u(0)][..], &[u(3)], &[u(9)]] {
            let mut ua = crate::predictor::PredictUsage::default();
            let mut ub = crate::predictor::PredictUsage::default();
            m.predict_ro(ctx, &mut a, &mut ua);
            back.predict_ro(ctx, &mut b, &mut ub);
            assert_eq!(a, b);
        }
        assert_eq!(m.stats(), back.stats());
        // The snapshot itself is canonical: re-snapshotting is identity.
        assert_eq!(m.to_snapshot(), back.to_snapshot());
    }

    #[test]
    fn stats_track_usage() {
        let mut m = Order1Markov::new();
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(2), u(3)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        let s = m.stats();
        assert_eq!(s.total_paths, 2);
        assert_eq!(s.used_paths, 1);
    }
}
