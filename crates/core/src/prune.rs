//! Post-build space optimization (§3.4, last paragraph).
//!
//! The paper combines two pruning alternatives after the popularity-based
//! tree is built:
//!
//! 1. **Relative access probability cut** — every non-root node whose count
//!    divided by its parent's count falls below a threshold (1%–5% in the
//!    paper's experiments) is removed together with its linked branches.
//! 2. **Absolute count cut** — every node accessed no more than once is
//!    removed (used for the bursty UCB-CS trace).
//!
//! Both operate on the shared [`Tree`] and are therefore reusable on any
//! model (the ablation benches apply them to the baselines too).

use crate::tree::Tree;
use serde::{Deserialize, Serialize};

/// Configuration of the two pruning alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneConfig {
    /// Remove non-root nodes with `count / parent.count` strictly below this
    /// (e.g. `0.01` for the paper's 1% cut). `None` disables the cut.
    pub relative_threshold: Option<f64>,
    /// Remove nodes (roots included) with `count <= min_abs_count`.
    /// `None` disables the cut; the paper uses `Some(1)` for UCB-CS.
    pub min_abs_count: Option<u64>,
}

impl Default for PruneConfig {
    /// The paper's NASA-trace configuration: 1% relative cut, no absolute cut.
    fn default() -> Self {
        Self {
            relative_threshold: Some(0.01),
            min_abs_count: None,
        }
    }
}

impl PruneConfig {
    /// No pruning at all.
    pub fn disabled() -> Self {
        Self {
            relative_threshold: None,
            min_abs_count: None,
        }
    }

    /// The paper's UCB-CS configuration: both optimizations on.
    pub fn aggressive() -> Self {
        Self {
            relative_threshold: Some(0.01),
            min_abs_count: Some(1),
        }
    }
}

/// What a pruning pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneReport {
    /// Alive nodes before pruning.
    pub nodes_before: usize,
    /// Alive nodes after pruning and compaction.
    pub nodes_after: usize,
}

impl PruneReport {
    /// Nodes removed by the pass.
    pub fn removed(&self) -> usize {
        self.nodes_before - self.nodes_after
    }
}

/// Applies the configured cuts to `tree` and compacts the arena.
pub fn prune(tree: &mut Tree, cfg: &PruneConfig) -> PruneReport {
    let nodes_before = tree.node_count();
    if let Some(threshold) = cfg.relative_threshold {
        prune_relative(tree, threshold);
    }
    if let Some(min_count) = cfg.min_abs_count {
        prune_absolute(tree, min_count);
    }
    tree.compact();
    PruneReport {
        nodes_before,
        nodes_after: tree.node_count(),
    }
}

/// Kills every non-root node whose relative access probability
/// (`count / parent.count`) is strictly below `threshold`.
///
/// PB-PPM's duplicated link nodes hang off roots and are judged by the same
/// formula — the paper removes "the node and its linked branches" alike.
pub fn prune_relative(tree: &mut Tree, threshold: f64) {
    let victims: Vec<_> = tree
        .iter_alive()
        .filter(|&id| {
            let node = tree.node(id);
            if node.parent.is_none() {
                return false; // roots are exempt from the relative cut
            }
            let parent = tree.node(node.parent);
            if !parent.alive || parent.count == 0 {
                return false; // will fall with its parent, or no basis
            }
            (node.count as f64) < threshold * parent.count as f64
        })
        .collect();
    for id in victims {
        tree.kill_subtree(id);
    }
}

/// Kills every node (roots included) with `count <= min_count`.
pub fn prune_absolute(tree: &mut Tree, min_count: u64) {
    let victims: Vec<_> = tree
        .iter_alive()
        .filter(|&id| tree.node(id).count <= min_count)
        .collect();
    for id in victims {
        tree.kill_subtree(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::UrlId;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    /// root(100) -> a(50) -> b(1), root -> c(2)
    fn sample_tree() -> Tree {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(0));
        t.node_mut(r).count = 100;
        let a = t.child_or_insert(r, u(1));
        t.node_mut(a).count = 50;
        let b = t.child_or_insert(a, u(2));
        t.node_mut(b).count = 1;
        let c = t.child_or_insert(r, u(3));
        t.node_mut(c).count = 2;
        t
    }

    #[test]
    fn relative_cut_removes_rare_children() {
        let mut t = sample_tree();
        // b: 1/50 = 2% >= 1% stays; c: 2/100 = 2% stays.
        prune_relative(&mut t, 0.01);
        assert_eq!(t.node_count(), 4);
        // At 5%: b (2%) and c (2%) both go.
        let mut t = sample_tree();
        prune_relative(&mut t, 0.05);
        assert_eq!(t.node_count(), 2);
        assert!(t.descend(&[u(0), u(1)]).is_some());
        assert!(t.descend(&[u(0), u(3)]).is_none());
    }

    #[test]
    fn relative_cut_spares_roots() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(0));
        t.node_mut(r).count = 1;
        prune_relative(&mut t, 0.5);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn absolute_cut_removes_singletons_everywhere() {
        let mut t = sample_tree();
        prune_absolute(&mut t, 1);
        // b (count 1) dies; a, c, root stay.
        assert_eq!(t.node_count(), 3);
        let mut t = sample_tree();
        prune_absolute(&mut t, 2);
        // b and c die.
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn absolute_cut_can_remove_roots() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(0));
        t.node_mut(r).count = 1;
        let a = t.child_or_insert(r, u(1));
        t.node_mut(a).count = 1;
        prune_absolute(&mut t, 1);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn combined_prune_reports_and_compacts() {
        let mut t = sample_tree();
        let report = prune(
            &mut t,
            &PruneConfig {
                relative_threshold: Some(0.05),
                min_abs_count: None,
            },
        );
        assert_eq!(report.nodes_before, 4);
        assert_eq!(report.nodes_after, 2);
        assert_eq!(report.removed(), 2);
        assert_eq!(t.arena_len(), 2, "compacted");
    }

    #[test]
    fn disabled_prune_is_identity() {
        let mut t = sample_tree();
        let report = prune(&mut t, &PruneConfig::disabled());
        assert_eq!(report.removed(), 0);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn pruning_never_increases_node_count() {
        let mut t = sample_tree();
        let before = t.node_count();
        for threshold in [0.0, 0.01, 0.05, 0.5, 1.0] {
            let mut t2 = t.clone();
            prune_relative(&mut t2, threshold);
            assert!(t2.node_count() <= before);
        }
        prune_absolute(&mut t, u64::MAX);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn link_dups_are_pruned_by_the_relative_cut() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(0));
        t.node_mut(r).count = 1000;
        let l = t.link_or_insert(r, u(9));
        t.node_mut(l).count = 1; // 0.1% of the root
        prune_relative(&mut t, 0.01);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.links_of(r).count(), 0);
    }
}
