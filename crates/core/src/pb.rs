//! The **popularity-based PPM** model — the paper's contribution (§3.4).
//!
//! The Markov prediction tree grows with a *variable* height per branch:
//! a popular URL heads a set of long branches, a less popular document heads
//! short ones. Four construction rules (§3.4) shape the tree:
//!
//! 1. **Grade-proportional heights.** A branch headed by a grade-*g* URL may
//!    grow to `heights[g]` nodes (defaults 7/5/3/1 for grades 3/2/1/0 — the
//!    values of §4.1).
//! 2. **Bounded initial maximum height.** The default ceiling of 7 reflects
//!    the paper's observation that more than 95% of access sessions have 9 or
//!    fewer clicks.
//! 3. **Special links.** While a branch grows, a URL that is *not* the
//!    immediate successor of the branch head and whose grade exceeds the
//!    head's grade (or is the highest grade) gets a **duplicated node**
//!    linked directly under the branch root. When the current click is a
//!    root, the linked duplicates yield additional predictions — popular
//!    URLs get extra prefetching consideration.
//! 4. **Root rule.** A URL starts a new root branch only at the session head
//!    or when its popularity grade is higher than the grade of the URL just
//!    before it. (Standard PPM roots a branch at *every* position; this rule
//!    is what "limits the number of root nodes".)
//!
//! After construction, [`PbPpm::finalize`] applies the two space
//! optimizations of [`crate::prune`].

use crate::context_index::{match_top, ContextHashes, ContextIndex};
use crate::frozen::{choose_strategy, FrozenTree, MatchStrategy};
use crate::interner::UrlId;
use crate::popularity::{Grade, PopularityTable};
use crate::predictor::{rank_predictions, ModelKind, PredictUsage, Prediction, Predictor};
use crate::prune::{prune, PruneConfig, PruneReport};
use crate::stats::ModelStats;
use crate::tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// Construction parameters for [`PbPpm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbConfig {
    /// Maximum branch height per heading-URL grade, indexed by
    /// [`Grade::level`]. The paper's §4.1 values are `[1, 3, 5, 7]`.
    pub heights: [u8; 4],
    /// Whether rule 3 special links are created (on in the paper; the
    /// ablation benches turn it off).
    pub special_links: bool,
    /// Post-build space optimization applied by [`PbPpm::finalize`].
    pub prune: PruneConfig,
    /// Longest context considered when matching (defaults to the tallest
    /// branch height + 1).
    pub max_order: usize,
}

impl Default for PbConfig {
    fn default() -> Self {
        Self {
            heights: [1, 3, 5, 7],
            special_links: true,
            prune: PruneConfig::default(),
            max_order: 8,
        }
    }
}

impl PbConfig {
    /// Branch height for a heading URL of grade `g`, at least 1.
    #[inline]
    pub fn height_for(&self, g: Grade) -> u8 {
        self.heights[g.level() as usize].max(1)
    }
}

/// One growing branch during session insertion.
struct Cursor {
    /// Deepest node inserted so far on this branch.
    at: NodeId,
    /// The branch's root (link target anchor).
    root: NodeId,
    /// Grade of the branch's heading URL.
    head_grade: Grade,
    /// How many more nodes this branch may accept.
    remaining: u8,
    /// Depth of `at` within the branch (head = 1).
    depth: u8,
}

/// Inserts one session into `tree` under the paper's four construction
/// rules, against a frozen popularity table and config.
///
/// This is [`Predictor::train_session`] for [`PbPpm`] with the tree made
/// explicit, so parallel training workers can grow private partial trees
/// against the **shared** popularity table and config. Every decision here
/// reads only `session`, `pop`, `cfg`, and the URL of the branch root the
/// session itself created — never pre-existing tree contents — which is the
/// property [`Tree::merge_from`]'s determinism contract rests on.
fn train_session_into(tree: &mut Tree, pop: &PopularityTable, cfg: &PbConfig, session: &[UrlId]) {
    let mut cursors: Vec<Cursor> = Vec::with_capacity(4);
    let mut prev_grade = Grade::G0;
    // A link's count answers "in how many of the branch's sessions was
    // the popular URL revisited later?", so each (root, url) link is
    // bumped at most once per session no matter how often the URL
    // recurs.
    let mut linked_this_session: Vec<(NodeId, UrlId)> = Vec::new();
    for (i, &url) in session.iter().enumerate() {
        let g = pop.grade(url);

        // Rule 1/2: extend every branch that still has headroom.
        cursors.retain_mut(|c| {
            if c.remaining == 0 {
                return false;
            }
            c.at = tree.child_or_insert(c.at, url);
            tree.bump(c.at);
            c.remaining -= 1;
            c.depth += 1;
            // Rule 3: duplicate-and-link popular URLs that are not the
            // head's immediate successor. A link back to the head itself
            // would predict the page currently being served, so skip it.
            if cfg.special_links
                && c.depth >= 3
                && (g > c.head_grade || g == Grade::MAX)
                && url != tree.node(c.root).url
                && !linked_this_session.contains(&(c.root, url))
            {
                let dup = tree.link_or_insert(c.root, url);
                tree.bump(dup);
                linked_this_session.push((c.root, url));
            }
            true
        });

        // Rule 4: a new root at the session head or on a grade ascent.
        if i == 0 || g > prev_grade {
            let root = tree.root_or_insert(url);
            tree.bump(root);
            // If this root's branch is already being grown in this
            // session, restart it rather than double-extend it.
            cursors.retain(|c| c.root != root);
            cursors.push(Cursor {
                at: root,
                root,
                head_grade: g,
                remaining: cfg.height_for(g) - 1,
                depth: 1,
            });
        }
        prev_grade = g;
    }
}

/// Popularity-based PPM prediction model.
///
/// `Clone` exists for epoch publication: the serving writer clones the
/// freshly rebuilt (finalized) model into an immutable snapshot that
/// readers share via `Arc` — see [`crate::publish`].
#[derive(Clone)]
pub struct PbPpm {
    pub(crate) tree: Tree,
    pub(crate) pop: PopularityTable,
    pub(crate) cfg: PbConfig,
    pub(crate) finalized: bool,
    prune_report: Option<PruneReport>,
    /// Diagnostics: cumulative number of predictions emitted via special
    /// links vs via branch matching (since construction).
    pub emitted_link_preds: u64,
    /// See [`PbPpm::emitted_link_preds`].
    pub emitted_branch_preds: u64,
    /// Occurrence index: URL → every alive branch node for that URL.
    ///
    /// Standard and LRS trees store every *suffix* of a sequence as its own
    /// branch, so matching a context against branch roots is enough. PB-PPM
    /// saves exactly that duplication (rule 4), which means the longest
    /// context match must be sought at **interior** nodes. This index backs
    /// the retained linear-scan reference path
    /// ([`PbPpm::predict_reference`]); live prediction goes through the
    /// hashed `index` below, which the property tests hold bit-identical
    /// to the scan.
    pub(crate) by_url: crate::fxhash::FxHashMap<UrlId, Vec<NodeId>>,
    /// Fingerprint fast path: `(window length, rolling hash)` → candidate
    /// nodes plus precomputed per-bucket vote aggregates
    /// ([`crate::context_index::WindowGroup`]), built once in
    /// [`PbPpm::finalize`] over the pruned arena.
    pub(crate) index: ContextIndex,
    /// Frozen SoA/CSR arena, compiled by `finalize`; verification walks and
    /// the link channel read it instead of chasing pointer-tree nodes.
    pub(crate) frozen: Option<FrozenTree>,
    /// Adaptive choice between the frozen occurrence scan and the
    /// fingerprint index, made at finalize from measured bucket occupancy.
    pub(crate) strategy: MatchStrategy,
}

impl PbPpm {
    /// Creates a PB-PPM model over a frozen popularity table (the outcome of
    /// the first training pass — see [`PopularityTable::builder`]).
    pub fn new(pop: PopularityTable, cfg: PbConfig) -> Self {
        Self {
            tree: Tree::new(),
            pop,
            cfg,
            finalized: false,
            prune_report: None,
            emitted_link_preds: 0,
            emitted_branch_preds: 0,
            by_url: crate::fxhash::FxHashMap::default(),
            index: ContextIndex::default(),
            frozen: None,
            strategy: MatchStrategy::FingerprintIndex,
        }
    }

    /// Trains on every session, deterministically parallel.
    ///
    /// Sessions are split into contiguous partitions, each worker grows a
    /// private partial tree via [`train_session_into`] against the shared
    /// frozen popularity table, and the partials are merged **in partition
    /// order** by [`Tree::merge_from`] — bit-identical to a sequential
    /// [`Predictor::train_session`] loop at every thread count (`0` = auto
    /// via `PBPPM_THREADS`/available parallelism).
    pub fn train_sessions<S: AsRef<[UrlId]> + Sync>(&mut self, sessions: &[S], threads: usize) {
        debug_assert!(!self.finalized, "train_sessions after finalize");
        let threads = crate::parallel::resolve_threads(threads).min(sessions.len().max(1));
        if threads <= 1 {
            for s in sessions {
                train_session_into(&mut self.tree, &self.pop, &self.cfg, s.as_ref());
            }
            return;
        }
        let ranges = crate::parallel::partition_ranges(sessions.len(), threads);
        let pop = &self.pop;
        let cfg = &self.cfg;
        let donors = crate::parallel::parallel_map_with(&ranges, threads, |r| {
            let mut tree = Tree::new();
            for s in &sessions[r.clone()] {
                train_session_into(&mut tree, pop, cfg, s.as_ref());
            }
            tree
        });
        for donor in &donors {
            self.tree.merge_from(donor);
        }
    }

    /// Length of the longest context suffix that matches the upward path
    /// ending at `node` (at least 1 when `node.url == *context.last()`),
    /// capped at `max_order` URLs.
    ///
    /// Audited against the grouping in [`PbPpm::predict_reference`]: the
    /// walk stops *after* counting a node whose `parent.is_none()` — at a
    /// branch root the stored path is exhausted, so a longer context suffix
    /// cannot match and the root's length is final. Breaking *before*
    /// counting (or following the `NONE` parent) would under-count root
    /// matches by one or index outside the arena. The unit tests pin the
    /// root, interior and leaf cases, including a context that outruns the
    /// stored branch.
    fn match_len(&self, node: NodeId, context: &[UrlId]) -> usize {
        let mut len = 0;
        let mut cur = node;
        for &url in context.iter().rev().take(self.cfg.max_order) {
            if self.tree.node(cur).url != url {
                break;
            }
            len += 1;
            let parent = self.tree.node(cur).parent;
            if parent.is_none() {
                break;
            }
            cur = parent;
        }
        len
    }

    /// Reference prediction path: the original linear occurrence scan over
    /// `by_url`, kept verbatim (minus usage bookkeeping) as the ground
    /// truth the hashed fast path is property-tested against.
    pub fn predict_reference(&self, context: &[UrlId], out: &mut Vec<Prediction>) {
        out.clear();
        let Some(&current) = context.last() else {
            return;
        };
        if let Some(nodes) = self.by_url.get(&current) {
            // Group candidate nodes by match length, longest first.
            let mut scored: Vec<(usize, NodeId)> = nodes
                .iter()
                .filter(|&&id| self.tree.node(id).alive)
                .map(|&id| (self.match_len(id, context), id))
                .collect();
            scored.sort_by_key(|&(len, _)| std::cmp::Reverse(len));
            let mut i = 0;
            while i < scored.len() {
                let len = scored[i].0;
                let mut j = i;
                let mut parent_total = 0u64;
                let mut votes: Vec<(UrlId, u64)> = Vec::new();
                while j < scored.len() && scored[j].0 == len {
                    let node = scored[j].1;
                    if self.tree.children_of(node).next().is_some() {
                        parent_total += self.tree.node(node).count;
                        for (url, _, count) in self.tree.children_of(node) {
                            votes.push((url, count));
                        }
                    }
                    j += 1;
                }
                if parent_total > 0 {
                    let mut agg: crate::fxhash::FxHashMap<UrlId, u64> =
                        crate::fxhash::FxHashMap::default();
                    for &(url, count) in &votes {
                        *agg.entry(url).or_default() += count;
                    }
                    for (url, count) in agg {
                        out.push(Prediction::new(url, count as f64 / parent_total as f64));
                    }
                    break;
                }
                i = j;
            }
        }
        if let Some(root) = self.tree.root(current) {
            let root_count = self.tree.node(root).count;
            if root_count > 0 {
                for id in self.tree.links_of(root) {
                    let n = self.tree.node(id);
                    out.push(Prediction::new(n.url, n.count as f64 / root_count as f64));
                }
            }
        }
        rank_predictions(out, usize::MAX);
    }

    /// Per-member fallback for a fingerprint bucket flagged dirty at build
    /// time (members with genuinely different window contents hashed
    /// alike): verifies and filters each candidate individually, exactly
    /// like the reference scan's match-length grouping, recording usage
    /// per node. `older` is the context URL just before the suffix, if the
    /// suffix is not the whole (order-capped) context — a candidate whose
    /// stored path extends with it belongs to a longer match group.
    /// Returns true when the group voted, ending the length descent.
    fn vote_candidates(
        &self,
        suffix: &[UrlId],
        older: Option<UrlId>,
        candidates: &[NodeId],
        out: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) -> bool {
        let mut group: Vec<NodeId> = Vec::new();
        for &id in candidates {
            if !self.tree.node(id).alive {
                continue;
            }
            let Some(top) = match_top(&self.tree, id, suffix) else {
                continue; // bucket collision
            };
            if let Some(older) = older {
                let above = self.tree.node(top).parent;
                if !above.is_none() && self.tree.node(above).url == older {
                    continue; // match extends: counted at a longer length
                }
            }
            group.push(id);
        }
        let mut parent_total = 0u64;
        for &id in &group {
            if self.tree.children_of(id).next().is_some() {
                parent_total += self.tree.node(id).count;
            }
        }
        if parent_total == 0 {
            return false;
        }
        // Aggregate votes per URL across same-length matches.
        let mut agg: crate::fxhash::FxHashMap<UrlId, u64> = crate::fxhash::FxHashMap::default();
        for &id in &group {
            if self.tree.children_of(id).next().is_none() {
                continue;
            }
            usage.used_paths.push(id);
            for (url, child, count) in self.tree.children_of(id) {
                *agg.entry(url).or_default() += count;
                usage.used_nodes.push(child);
            }
        }
        for (url, count) in agg {
            out.push(Prediction::new(url, count as f64 / parent_total as f64));
            usage.branch_preds += 1;
        }
        true
    }

    /// Publishes the post-finalize storage shape of the PB-specific
    /// machinery to the telemetry registry (gauges under `model=PB-PPM`):
    /// prune removals and `ContextIndex` occupancy. (The generic
    /// node/edge/byte gauges are published per model by the simulator.)
    /// Last-writer-wins when several PB models finalize in one process
    /// (e.g. a parallel sweep); per-cell storage lives in each run's
    /// [`ModelStats`] regardless.
    fn publish_storage_gauges(&self) {
        let reg = pbppm_obs::global();
        let label = format!("model={}", self.kind().label());
        if let Some(report) = self.prune_report {
            reg.gauge("core.prune.removed", &label)
                .set(report.removed() as u64);
        }
        let occ = self.index.occupancy();
        reg.gauge("core.index.entries", &label)
            .set(self.index.len() as u64);
        reg.gauge("core.index.bytes", &label)
            .set(self.index.memory_bytes() as u64);
        reg.gauge("core.index.buckets", &label)
            .set(occ.buckets as u64);
        reg.gauge("core.index.max_bucket", &label)
            .set(occ.max_bucket as u64);
        reg.gauge("core.index.dirty_groups", &label)
            .set(occ.dirty_groups as u64);
    }

    /// Read-only access to the underlying tree (tests, rendering).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The popularity table the model was built with.
    pub fn popularity(&self) -> &PopularityTable {
        &self.pop
    }

    /// What [`PbPpm::finalize`]'s space optimization removed, if it ran.
    pub fn prune_report(&self) -> Option<PruneReport> {
        self.prune_report
    }

    /// The configuration in use.
    pub fn config(&self) -> &PbConfig {
        &self.cfg
    }

    /// The frozen SoA/CSR arena compiled at finalize, if any.
    pub fn frozen(&self) -> Option<&FrozenTree> {
        self.frozen.as_ref()
    }

    /// Pins the match strategy regardless of what the adaptive selector
    /// chose, so tests can exercise a specific path. Not public API.
    #[doc(hidden)]
    pub fn force_strategy(&mut self, strategy: MatchStrategy) {
        self.strategy = strategy;
    }

    /// Pointer-arena prediction path (fingerprint index + pointer-tree
    /// walks), retained verbatim so the throughput bench can time the
    /// frozen arena against it. Not public API.
    #[doc(hidden)]
    pub fn predict_pointer(
        &self,
        context: &[UrlId],
        out: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) {
        out.clear();
        let Some(&current) = context.last() else {
            return;
        };
        self.predict_via_index(None, context, current, out, usage);
    }

    /// The reference occurrence scan served from the frozen SoA/CSR arrays
    /// instead of pointer-tree nodes, chosen by the adaptive selector when
    /// the fingerprint index's measured occupancy predicts no win over a
    /// linear grouped scan. Emits exactly the reference algorithm's
    /// predictions ([`rank_predictions`] makes the ordering deterministic)
    /// with `vote_candidates`-style per-node usage records.
    fn predict_frozen_scan(
        &self,
        frozen: &FrozenTree,
        context: &[UrlId],
        current: UrlId,
        out: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) {
        if let Some(nodes) = self.by_url.get(&current) {
            // Group candidate occurrences by match length, longest first —
            // `by_url` is rebuilt over the compacted arena at finalize, so
            // every id is alive and maps 1:1 onto a frozen row.
            let mut scored: Vec<(usize, u32)> = nodes
                .iter()
                .map(|&id| (frozen.match_len(id.0, context, self.cfg.max_order), id.0))
                .collect();
            scored.sort_by_key(|&(len, _)| std::cmp::Reverse(len));
            let mut i = 0;
            while i < scored.len() {
                let len = scored[i].0;
                let mut j = i;
                let mut parent_total = 0u64;
                while j < scored.len() && scored[j].0 == len {
                    if frozen.has_children(scored[j].1) {
                        parent_total += frozen.count(scored[j].1);
                    }
                    j += 1;
                }
                if parent_total > 0 {
                    let mut agg: crate::fxhash::FxHashMap<UrlId, u64> =
                        crate::fxhash::FxHashMap::default();
                    for &(_, node) in &scored[i..j] {
                        if !frozen.has_children(node) {
                            continue;
                        }
                        usage.used_paths.push(NodeId(node));
                        for &(url, child) in frozen.children(node) {
                            *agg.entry(url).or_default() += frozen.count(child);
                            usage.used_nodes.push(NodeId(child));
                        }
                    }
                    for (url, count) in agg {
                        out.push(Prediction::new(url, count as f64 / parent_total as f64));
                        usage.branch_preds += 1;
                    }
                    usage.index_fast += 1;
                    break;
                }
                i = j;
            }
        }
        // Link channel from the frozen link CSR (same stored order as the
        // pointer tree's alive-filtered link lists).
        if let Some(root) = frozen.root(current) {
            let root_count = frozen.count(root);
            if root_count > 0 {
                let mut any = false;
                for &id in frozen.links_of(current) {
                    out.push(Prediction::new(
                        frozen.url(id),
                        frozen.count(id) as f64 / root_count as f64,
                    ));
                    usage.used_nodes.push(NodeId(id));
                    usage.link_preds += 1;
                    any = true;
                }
                if any {
                    usage.used_nodes.push(NodeId(root));
                }
            }
        }
        rank_predictions(out, usize::MAX);
    }

    /// Branch predictions via the longest matching context, sought at
    /// interior nodes (see the `by_url` field docs). The fingerprint
    /// index hands us, per window length, the *precomputed aggregate*
    /// of all nodes whose window spells that content: one representative
    /// upward walk verifies the whole bucket against the suffix
    /// (hash-bucket collisions), and the reference scan's maximality
    /// rule — a node whose stored path keeps agreeing with an even older
    /// context URL belongs to a longer match group — becomes a
    /// subtraction of the per-extension sub-aggregate for the next-older
    /// context URL. The longest length whose remaining total is positive
    /// votes with its aggregated children, weighted by count. Buckets
    /// flagged dirty at build time (a genuine fingerprint collision)
    /// fall back to the per-member scan in `vote_candidates`.
    ///
    /// When `frozen` is given, the representative verification walk and
    /// the link channel read the SoA/CSR arrays (node ids map 1:1); with
    /// `None` everything runs against the pointer tree, which is the
    /// bench's pointer comparator.
    fn predict_via_index(
        &self,
        frozen: Option<&FrozenTree>,
        context: &[UrlId],
        current: UrlId,
        out: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) {
        let len = context.len();
        let longest = len.min(self.cfg.max_order).min(usize::from(u8::MAX));
        let mut hashes = ContextHashes::new();
        hashes.compute(context, longest);
        for l in (1..=longest).rev() {
            let suffix = &context[len - l..];
            let Some((key, g)) = self.index.group(l, hashes.suffix_hash(l)) else {
                continue;
            };
            if g.dirty {
                let older = (l < longest).then(|| context[len - 1 - l]);
                let candidates = self.index.candidates(l, hashes.suffix_hash(l));
                if self.vote_candidates(suffix, older, candidates, out, usage) {
                    usage.index_fallback += 1;
                    break;
                }
                continue;
            }
            let spelled = match frozen {
                Some(f) => f.match_top(g.rep.0, suffix).is_some(),
                None => match_top(&self.tree, g.rep, suffix).is_some(),
            };
            if !spelled {
                continue; // clean bucket, so no node spells this suffix
            }
            let excluded = if l < longest {
                let ext = context[len - 1 - l];
                g.sub_for(ext).map(|s| (ext, s))
            } else {
                None
            };
            match excluded {
                None => {
                    if g.total == 0 {
                        continue;
                    }
                    for &(url, count) in &g.votes {
                        out.push(Prediction::new(url, count as f64 / g.total as f64));
                        usage.branch_preds += 1;
                    }
                    usage.used_groups.push((key, u64::MAX));
                }
                Some((ext, sub)) => {
                    let total = g.total - sub.total;
                    if total == 0 {
                        continue;
                    }
                    // `sub.votes` is a sorted subset of `g.votes`: one
                    // forward merge subtracts the excluded members' votes.
                    let mut j = 0;
                    for &(url, count) in &g.votes {
                        let mut c = count;
                        if j < sub.votes.len() && sub.votes[j].0 == url {
                            c -= sub.votes[j].1;
                            j += 1;
                        }
                        if c > 0 {
                            out.push(Prediction::new(url, c as f64 / total as f64));
                            usage.branch_preds += 1;
                        }
                    }
                    usage.used_groups.push((key, u64::from(ext.0)));
                }
            }
            usage.index_fast += 1;
            break;
        }

        // Additional predictions from the special links when the current
        // click is a root (§3.4 rule 3, §4.1). A link's probability is the
        // fraction of the branch's sessions in which the duplicated popular
        // URL was visited later on — the "possibility" that pushing it now
        // pays off before the session ends. On a home-oriented site the top
        // entry pages clear the 0.25 policy threshold this way; on a site
        // without a popular anchor they do not, and the channel stays quiet.
        match frozen {
            Some(f) => {
                if let Some(root) = f.root(current) {
                    let root_count = f.count(root);
                    if root_count > 0 {
                        let mut any = false;
                        for &id in f.links_of(current) {
                            out.push(Prediction::new(
                                f.url(id),
                                f.count(id) as f64 / root_count as f64,
                            ));
                            usage.used_nodes.push(NodeId(id));
                            usage.link_preds += 1;
                            any = true;
                        }
                        if any {
                            usage.used_nodes.push(NodeId(root));
                        }
                    }
                }
            }
            None => {
                if let Some(root) = self.tree.root(current) {
                    let root_count = self.tree.node(root).count;
                    if root_count > 0 {
                        let mut any = false;
                        for id in self.tree.links_of(root) {
                            let n = self.tree.node(id);
                            out.push(Prediction::new(n.url, n.count as f64 / root_count as f64));
                            usage.used_nodes.push(id);
                            usage.link_preds += 1;
                            any = true;
                        }
                        if any {
                            usage.used_nodes.push(root);
                        }
                    }
                }
            }
        }

        rank_predictions(out, usize::MAX);
    }

    /// Serializes the trained model (tree, popularity table, config) so a
    /// server can persist it across restarts. Only meaningful after
    /// [`Predictor::finalize`].
    pub fn to_snapshot(&self) -> PbSnapshot {
        PbSnapshot {
            tree: self.tree.to_snapshot(),
            pop: self.pop.clone(),
            cfg: self.cfg,
            finalized: self.finalized,
            frozen: self.frozen.clone(),
        }
    }

    /// Restores a model from a snapshot, rebuilding the occurrence and
    /// fingerprint indexes.
    pub fn from_snapshot(snap: &PbSnapshot) -> Result<Self, crate::tree::SnapshotError> {
        let mut tree = Tree::from_snapshot(&snap.tree)?;
        let mut by_url: crate::fxhash::FxHashMap<UrlId, Vec<NodeId>> =
            crate::fxhash::FxHashMap::default();
        for id in tree.iter_alive() {
            let node = tree.node(id);
            if !node.link_dup {
                by_url.entry(node.url).or_default().push(id);
            }
        }
        let index = ContextIndex::windows(&mut tree, snap.cfg.max_order);
        let strategy = choose_strategy(index.len(), index.occupancy());
        // The frozen arena is always recompiled from the decoded tree —
        // a persisted copy is never trusted for serving (the audit layer
        // compares it against this rebuild instead).
        let frozen = snap.finalized.then(|| tree.freeze(Some(&snap.pop)));
        Ok(Self {
            tree,
            pop: snap.pop.clone(),
            cfg: snap.cfg,
            finalized: snap.finalized,
            prune_report: None,
            emitted_link_preds: 0,
            emitted_branch_preds: 0,
            by_url,
            index,
            frozen,
            strategy,
        })
    }

    /// Corruption hook for the audit adversarial harness: swaps in a
    /// (possibly forged) popularity table without any rederivation.
    #[doc(hidden)]
    pub fn set_popularity_for_audit(&mut self, pop: crate::popularity::PopularityTable) {
        self.pop = pop;
    }

    /// Corruption hook for the audit adversarial harness: skews one
    /// precomputed fingerprint-bucket vote aggregate in place, simulating a
    /// stale index (the bug class [`crate::verify`]'s index check exists
    /// for). Returns false when the index has no live aggregate to skew.
    /// Not part of the public API.
    #[doc(hidden)]
    pub fn skew_index_aggregate_for_audit(&mut self) -> bool {
        for g in self.index.groups.values_mut() {
            if !g.dirty && g.total > 0 {
                g.total += 1;
                return true;
            }
        }
        false
    }
}

/// A serializable image of a trained [`PbPpm`] model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PbSnapshot {
    /// The pruned, compacted prediction forest.
    pub tree: crate::tree::TreeSnapshot,
    /// The frozen popularity table the model was built with.
    pub pop: PopularityTable,
    /// Construction parameters.
    pub cfg: PbConfig,
    /// Whether [`Predictor::finalize`] had run.
    pub finalized: bool,
    /// The frozen SoA/CSR arena compiled at finalize (`None` for
    /// unfinalized models or snapshots written before the frozen format).
    /// Restoring always recompiles from `tree`; this copy exists so the
    /// audit layer can cross-check what was persisted.
    pub frozen: Option<FrozenTree>,
}

impl Predictor for PbPpm {
    fn kind(&self) -> ModelKind {
        ModelKind::Pb
    }

    fn train_session(&mut self, session: &[UrlId]) {
        debug_assert!(!self.finalized, "train_session after finalize");
        train_session_into(&mut self.tree, &self.pop, &self.cfg, session);
    }

    /// Applies the paper's post-build space optimizations (relative access
    /// probability cut and absolute count cut) and compacts the arena.
    fn finalize(&mut self) {
        debug_assert!(!self.finalized, "finalize called twice");
        self.prune_report = Some(prune(&mut self.tree, &self.cfg.prune));
        // Build the occurrence index over the pruned, compacted arena.
        self.by_url.clear();
        for id in self.tree.iter_alive().collect::<Vec<_>>() {
            let node = self.tree.node(id);
            if !node.link_dup {
                self.by_url.entry(node.url).or_default().push(id);
            }
        }
        self.index = ContextIndex::windows(&mut self.tree, self.cfg.max_order);
        // Choose between the frozen occurrence scan and the fingerprint
        // index from the index's measured shape, then compile the SoA/CSR
        // arena (a no-op compact: prune already ran, so node ids are
        // stable and `by_url`/index references stay valid).
        self.strategy = choose_strategy(self.index.len(), self.index.occupancy());
        self.frozen = Some(self.tree.freeze(Some(&self.pop)));
        self.finalized = true;
        if pbppm_obs::ENABLED {
            self.publish_storage_gauges();
        }
        crate::verify::runtime_audit(&crate::verify::ModelRef::Pb(self), "PbPpm::finalize");
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        out.clear();
        let Some(&current) = context.last() else {
            return;
        };
        debug_assert!(self.finalized, "predict before finalize");
        match (&self.frozen, self.strategy) {
            (Some(frozen), MatchStrategy::FrozenScan) => {
                self.predict_frozen_scan(frozen, context, current, out, usage);
            }
            (frozen, _) => {
                self.predict_via_index(frozen.as_ref(), context, current, out, usage);
            }
        }
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        for &id in &usage.used_paths {
            self.tree.mark_path_used(id);
        }
        for &id in &usage.used_nodes {
            self.tree.mark_used(id);
        }
        if !usage.used_groups.is_empty() {
            // Resolve deferred group references back to node flags. Marking
            // is idempotent, so each distinct (bucket, exclusion) pair needs
            // resolving only once — an eval pass hits the same popular
            // buckets thousands of times.
            let mut groups = usage.used_groups.clone();
            groups.sort_unstable();
            groups.dedup();
            let index = std::mem::take(&mut self.index);
            for &(key, ext_code) in &groups {
                let Some(g) = index.group_by_key(key) else {
                    continue;
                };
                // `ext_code` is a widened `UrlId` (or the `u64::MAX` "none"
                // sentinel), so narrowing back is lossless.
                #[allow(clippy::cast_possible_truncation)]
                let excluded = (ext_code != u64::MAX).then_some(UrlId(ext_code as u32));
                for sub in &g.subs {
                    if excluded.is_some() && sub.ext == excluded {
                        continue;
                    }
                    for &id in &sub.voters {
                        self.tree.mark_path_used(id);
                    }
                    for &id in &sub.children {
                        self.tree.mark_used(id);
                    }
                }
            }
            self.index = index;
        }
        self.emitted_branch_preds += usage.branch_preds;
        self.emitted_link_preds += usage.link_preds;
    }

    fn frozen(&self) -> Option<&crate::frozen::FrozenTree> {
        self.frozen.as_ref()
    }

    fn match_strategy(&self) -> Option<MatchStrategy> {
        self.finalized.then_some(self.strategy)
    }

    fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    fn stats(&self) -> ModelStats {
        ModelStats::of_tree(&self.tree).with_index(&self.index)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_possible_truncation)] // tiny fixture indices

    use super::*;
    use crate::popularity::PopularityBuilder;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    /// Builds a popularity table where `grades[i]` is the grade of `UrlId(i)`.
    fn pop_with_grades(grades: &[u8]) -> PopularityTable {
        let mut b = PopularityBuilder::new();
        for (i, &g) in grades.iter().enumerate() {
            // Counts chosen so that with max = 1000 each URL lands in the
            // wanted log10 bucket. Grade 0 = unseen (rp < 0.1% either way).
            let count = match g {
                3 => 1000,
                2 => 50,
                1 => 5,
                _ => 0,
            };
            if count > 0 {
                b.record_n(u(i as u32), count);
            }
        }
        // anchor: ensure some url has 1000 so the scale is fixed
        b.record_n(u(grades.len() as u32), 1000);
        b.build()
    }

    fn no_prune() -> PbConfig {
        PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        }
    }

    /// The paper's Figure 1 (right): PB-PPM for `A B C A' B' C'` with grades
    /// 3/2/1 and maximum height 4 keeps two branches and one special link.
    #[test]
    fn figure1_right_shape() {
        // A=0 B=1 C=2 A'=3 B'=4 C'=5
        let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
        let cfg = PbConfig {
            heights: [1, 2, 3, 4], // figure's max height 4, grade-proportional
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(pop, cfg);
        m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        m.finalize();
        let t = m.tree();
        // Roots: A (session head) and A' (grade ascent over C).
        assert_eq!(t.root_count(), 2);
        assert!(t.root(u(0)).is_some());
        assert!(t.root(u(3)).is_some());
        assert!(t.root(u(1)).is_none(), "B must not become a root");
        // A's branch: A -> B -> C -> A' (height 4).
        assert!(t.descend(&[u(0), u(1), u(2), u(3)]).is_some());
        assert!(t.descend(&[u(0), u(1), u(2), u(3), u(4)]).is_none());
        // A''s branch: A' -> B' -> C'.
        assert!(t.descend(&[u(3), u(4), u(5)]).is_some());
        // Special link: A ~> duplicated A' (grade 3, depth 4 in A's branch).
        let root_a = t.root(u(0)).unwrap();
        let links: Vec<UrlId> = t.links_of(root_a).map(|id| t.node(id).url).collect();
        assert_eq!(links, vec![u(3)]);
        // 7 branch nodes + 1 duplicated link node.
        assert_eq!(m.node_count(), 8);
    }

    #[test]
    fn branch_heights_follow_grades() {
        let pop = pop_with_grades(&[3, 0, 0, 0, 0, 0, 0, 0, 0]);
        let mut m = PbPpm::new(pop.clone(), no_prune());
        // Session of 9 URLs headed by a grade-3 URL: branch capped at 7.
        m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5), u(6), u(7), u(8)]);
        m.finalize();
        assert_eq!(m.tree().max_depth(), 7);

        // Headed by a grade-0 URL: height 1 (the head only).
        let pop = pop_with_grades(&[0, 0, 0]);
        let mut m = PbPpm::new(pop, no_prune());
        m.train_session(&[u(0), u(1), u(2)]);
        m.finalize();
        assert_eq!(m.tree().max_depth(), 1);
    }

    #[test]
    fn root_rule_only_roots_on_grade_ascents() {
        // grades: 2, 1, 1, 2, 3
        let pop = pop_with_grades(&[2, 1, 1, 2, 3]);
        let mut m = PbPpm::new(pop, no_prune());
        m.train_session(&[u(0), u(1), u(2), u(3), u(4)]);
        m.finalize();
        let t = m.tree();
        // Roots: 0 (head), 3 (2 > 1), 4 (3 > 2). Not 1, 2.
        assert!(t.root(u(0)).is_some());
        assert!(t.root(u(3)).is_some());
        assert!(t.root(u(4)).is_some());
        assert!(t.root(u(1)).is_none());
        assert!(t.root(u(2)).is_none());
        assert_eq!(t.root_count(), 3);
    }

    #[test]
    fn special_links_require_distance_and_popularity() {
        // Head grade 2; sequence head, x(g2 at depth 2 - immediate), y(g3 at
        // depth 3), z(g1 at depth 4).
        let pop = pop_with_grades(&[2, 3, 3, 1]);
        let cfg = PbConfig {
            heights: [4, 4, 4, 4],
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(pop, cfg);
        // 1 is grade 3 and immediately follows the head: no link, but it
        // does become a root itself (grade ascent).
        m.train_session(&[u(0), u(1), u(2), u(3)]);
        m.finalize();
        let t = m.tree();
        let root0 = t.root(u(0)).unwrap();
        let links: Vec<UrlId> = t.links_of(root0).map(|id| t.node(id).url).collect();
        // Only u(2): grade 3 at depth 3 of branch 0. u(3) is grade 1: no.
        assert_eq!(links, vec![u(2)]);
    }

    #[test]
    fn disabling_special_links_removes_them() {
        let pop = pop_with_grades(&[3, 2, 1, 3]);
        let cfg = PbConfig {
            special_links: false,
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(pop, cfg);
        m.train_session(&[u(0), u(1), u(2), u(3)]);
        m.finalize();
        let t = m.tree();
        let root0 = t.root(u(0)).unwrap();
        assert_eq!(t.links_of(root0).count(), 0);
    }

    #[test]
    fn predicts_branch_children_and_linked_duplicates() {
        let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
        let cfg = PbConfig {
            heights: [1, 2, 3, 4],
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(pop, cfg);
        m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        // Branch child B plus linked duplicate A'.
        let urls: Vec<UrlId> = out.iter().map(|p| p.url).collect();
        assert!(urls.contains(&u(1)));
        assert!(urls.contains(&u(3)), "special link must add A'");
    }

    #[test]
    fn link_predictions_only_fire_from_roots() {
        let pop = pop_with_grades(&[3, 2, 1, 3]);
        let mut m = PbPpm::new(pop, no_prune());
        for _ in 0..2 {
            m.train_session(&[u(0), u(1), u(2), u(3)]);
        }
        m.finalize();
        let mut out = Vec::new();
        // Context ending at u(1), which is not a root: only branch children.
        m.predict(&[u(0), u(1)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].url, u(2));
    }

    #[test]
    fn finalize_prunes_rare_branches() {
        let pop = pop_with_grades(&[3, 2, 2]);
        let cfg = PbConfig {
            prune: PruneConfig {
                relative_threshold: Some(0.10),
                min_abs_count: None,
            },
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(pop, cfg);
        for _ in 0..99 {
            m.train_session(&[u(0), u(1)]);
        }
        m.train_session(&[u(0), u(2)]); // 1% of root's traffic
        let before = m.node_count();
        m.finalize();
        let report = m.prune_report().unwrap();
        assert_eq!(report.nodes_before, before);
        assert!(m.node_count() < before);
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert!(out.iter().all(|p| p.url != u(2)), "pruned child gone");
    }

    #[test]
    fn repeated_training_accumulates_counts_not_nodes() {
        let pop = pop_with_grades(&[3, 2, 1]);
        let mut m = PbPpm::new(pop, no_prune());
        m.train_session(&[u(0), u(1), u(2)]);
        let n = m.node_count();
        for _ in 0..10 {
            m.train_session(&[u(0), u(1), u(2)]);
        }
        assert_eq!(m.node_count(), n);
        let t = m.tree();
        let root = t.root(u(0)).unwrap();
        assert_eq!(t.node(root).count, 11);
    }

    #[test]
    fn unknown_url_grade_defaults_to_zero() {
        let pop = pop_with_grades(&[3]);
        let mut m = PbPpm::new(pop, no_prune());
        // u(77) was never graded: it may not root a branch mid-session
        // unless preceded by something of even lower grade.
        m.train_session(&[u(0), u(77)]);
        m.finalize();
        assert!(m.tree().root(u(77)).is_none());
        assert!(m.tree().descend(&[u(0), u(77)]).is_some());
    }

    #[test]
    fn session_restarting_same_root_does_not_double_count() {
        let pop = pop_with_grades(&[3, 0]);
        let mut m = PbPpm::new(pop, no_prune());
        // A x A x: A roots twice within one session.
        m.train_session(&[u(0), u(1), u(0), u(1)]);
        m.finalize();
        let t = m.tree();
        let root = t.root(u(0)).unwrap();
        assert_eq!(t.node(root).count, 2);
        // Child u(1) under A was visited twice but inserted once.
        let child = t.descend(&[u(0), u(1)]).unwrap();
        assert_eq!(t.node(child).count, 2);
        // Nodes: root A, child x, and the deep copy of A recorded before the
        // branch restarted (A x A). No self-link is created.
        assert_eq!(m.node_count(), 3);
        assert_eq!(t.links_of(root).count(), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions_and_links() {
        let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
        let mut m = PbPpm::new(pop, no_prune());
        for _ in 0..4 {
            m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        }
        m.finalize();
        let mut before = Vec::new();
        m.predict(&[u(0)], &mut before);
        let snap = m.to_snapshot();
        let mut back = PbPpm::from_snapshot(&snap).unwrap();
        assert_eq!(back.node_count(), m.node_count());
        let mut after = Vec::new();
        back.predict(&[u(0)], &mut after);
        assert_eq!(before, after, "branch and link predictions must survive");
    }

    /// Satellite audit of `match_len`: pins the match length at a root, an
    /// interior node and a leaf, including the root-stop case where the
    /// context is longer than the stored branch.
    #[test]
    fn match_len_pins_root_interior_and_leaf() {
        let pop = pop_with_grades(&[3, 0, 0, 0]);
        let mut m = PbPpm::new(pop, no_prune());
        // One branch 0 -> 1 -> 2 -> 3 (head grade 3, height 7).
        m.train_session(&[u(0), u(1), u(2), u(3)]);
        m.finalize();
        let t = m.tree();
        let root = t.root(u(0)).unwrap();
        let interior = t.descend(&[u(0), u(1), u(2)]).unwrap();
        let leaf = t.descend(&[u(0), u(1), u(2), u(3)]).unwrap();

        // Root: exactly 1 when the current click is the root URL...
        assert_eq!(m.match_len(root, &[u(0)]), 1);
        // ...and still 1 when the context extends past the stored path —
        // the walk must stop after counting the root, not keep consuming
        // context URLs that have no stored nodes above the root.
        assert_eq!(m.match_len(root, &[u(9), u(8), u(0)]), 1);

        // Interior node: full upward match, partial match, mismatch.
        assert_eq!(m.match_len(interior, &[u(0), u(1), u(2)]), 3);
        assert_eq!(m.match_len(interior, &[u(1), u(2)]), 2);
        assert_eq!(m.match_len(interior, &[u(9), u(1), u(2)]), 2);
        assert_eq!(m.match_len(interior, &[u(9)]), 0);

        // Leaf: matches its whole branch, capped by max_order.
        assert_eq!(m.match_len(leaf, &[u(0), u(1), u(2), u(3)]), 4);
        assert_eq!(m.match_len(leaf, &[u(2), u(3)]), 2);
        let short = PbConfig {
            max_order: 2,
            ..no_prune()
        };
        let pop = pop_with_grades(&[3, 0, 0, 0]);
        let mut capped = PbPpm::new(pop, short);
        capped.train_session(&[u(0), u(1), u(2), u(3)]);
        capped.finalize();
        let leaf = capped.tree().descend(&[u(0), u(1), u(2), u(3)]).unwrap();
        assert_eq!(capped.match_len(leaf, &[u(0), u(1), u(2), u(3)]), 2);
    }

    /// The hashed fast path must agree with the retained linear scan —
    /// here on a hand-built shape with interior matches, special links and
    /// multiple same-URL occurrence nodes (the property tests cover random
    /// traces).
    #[test]
    fn fast_path_matches_reference_scan() {
        let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
        let mut m = PbPpm::new(pop, no_prune());
        for _ in 0..3 {
            m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        }
        m.train_session(&[u(3), u(1), u(2), u(0)]);
        m.finalize();
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        for strategy in [MatchStrategy::FingerprintIndex, MatchStrategy::FrozenScan] {
            m.force_strategy(strategy);
            for ctx in [
                vec![u(0)],
                vec![u(1)],
                vec![u(0), u(1)],
                vec![u(3), u(1)],
                vec![u(9), u(1)],
                vec![u(0), u(1), u(2)],
                vec![u(3), u(4), u(5)],
                vec![u(99)],
                vec![],
            ] {
                let mut usage = crate::predictor::PredictUsage::default();
                m.predict_ro(&ctx, &mut fast, &mut usage);
                m.predict_reference(&ctx, &mut slow);
                assert_eq!(fast, slow, "context {ctx:?} under {strategy:?}");
            }
        }
    }

    /// Flag every fingerprint bucket dirty (as a real 64-bit collision
    /// would) and check the per-member fallback still matches the
    /// reference scan, with usage recorded per node again.
    #[test]
    fn dirty_bucket_fallback_matches_reference() {
        let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
        let mut m = PbPpm::new(pop, no_prune());
        for _ in 0..3 {
            m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        }
        m.train_session(&[u(3), u(1), u(2), u(0)]);
        m.finalize();
        // Dirty-bucket handling lives on the index path; pin it so the
        // adaptive selector cannot route this fixture to the frozen scan.
        m.force_strategy(MatchStrategy::FingerprintIndex);
        m.index.force_dirty();
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        for ctx in [
            vec![u(0)],
            vec![u(1)],
            vec![u(0), u(1)],
            vec![u(3), u(1)],
            vec![u(9), u(1)],
            vec![u(0), u(1), u(2)],
            vec![u(3), u(4), u(5)],
            vec![u(99)],
        ] {
            let mut usage = crate::predictor::PredictUsage::default();
            m.predict_ro(&ctx, &mut fast, &mut usage);
            m.predict_reference(&ctx, &mut slow);
            assert_eq!(fast, slow, "context {ctx:?}");
            assert!(usage.used_groups.is_empty(), "dirty path records nodes");
        }
        let mut usage = crate::predictor::PredictUsage::default();
        m.predict_ro(&[u(0), u(1)], &mut fast, &mut usage);
        assert!(!usage.used_paths.is_empty());
    }

    /// The deferred group marking in `apply_usage` must flag the same
    /// nodes the dirty fallback flags directly.
    #[test]
    fn group_usage_marks_like_per_member_usage() {
        let build = || {
            let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
            let mut m = PbPpm::new(pop, no_prune());
            for _ in 0..3 {
                m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
            }
            m.train_session(&[u(3), u(1), u(2), u(0)]);
            m.finalize();
            // Group marking is index-path machinery; pin the strategy.
            m.force_strategy(MatchStrategy::FingerprintIndex);
            m
        };
        let contexts = [
            vec![u(0)],
            vec![u(0), u(1)],
            vec![u(3), u(1)],
            vec![u(0), u(1), u(2)],
            vec![u(3), u(4), u(5)],
        ];
        let mut grouped = build();
        let mut fallback = build();
        fallback.index.force_dirty();
        let mut out = Vec::new();
        for ctx in &contexts {
            let mut usage = crate::predictor::PredictUsage::default();
            grouped.predict_ro(ctx, &mut out, &mut usage);
            grouped.apply_usage(&usage);
            let mut usage = crate::predictor::PredictUsage::default();
            fallback.predict_ro(ctx, &mut out, &mut usage);
            fallback.apply_usage(&usage);
        }
        assert_eq!(grouped.stats(), fallback.stats());
    }

    #[test]
    fn empty_context_and_empty_session_are_safe() {
        let pop = pop_with_grades(&[3]);
        let mut m = PbPpm::new(pop, no_prune());
        m.train_session(&[]);
        m.finalize();
        let mut out = vec![Prediction::new(u(0), 1.0)];
        m.predict(&[], &mut out);
        assert!(out.is_empty());
    }
}
