//! The **LRS-PPM** model (§3.2, second approach): Longest Repeating
//! Subsequences, after Pitkow & Pirolli, *"Mining longest repeating
//! subsequences to predict World Wide Web surfing"* (USENIX '99).
//!
//! A *repeating subsequence* is a contiguous URL sequence observed more than
//! once across all sessions; the model keeps only repeating paths, which is
//! equivalent to building the full suffix forest and discarding every node
//! traversed fewer than `min_support` (= 2) times. Keeping each maximal
//! repeating sequence *and* all of its suffix-rooted copies is what the paper
//! describes as branches being "cut and paste into multiple sub-branches
//! starting from different URLs" — the source of this model's node
//! duplication and of its fast growth in Table 1/Figure 4.
//!
//! Training therefore proceeds exactly like standard PPM; the LRS extraction
//! happens in [`LrsPpm::finalize`], which must be called before predicting.

use crate::context_index::{ContextHashes, ContextIndex};
use crate::frozen::{choose_strategy, FrozenTree, MatchStrategy};
use crate::interner::UrlId;
use crate::predictor::{rank_predictions, ModelKind, PredictUsage, Prediction, Predictor};
use crate::stats::ModelStats;
use crate::tree::{NodeId, Tree};

/// Default occurrence threshold: "if an URL sequence is accessed twice or
/// more, the sequence is considered as a frequently repeating one" (§4.1).
pub const DEFAULT_MIN_SUPPORT: u64 = 2;

/// LRS-PPM prediction model.
#[derive(Debug, Clone)]
pub struct LrsPpm {
    pub(crate) tree: Tree,
    pub(crate) min_support: u64,
    pub(crate) max_height: usize,
    pub(crate) finalized: bool,
    /// Full-root-path fingerprint index, built by `finalize` over the
    /// extracted repeating forest. `None` before finalization, when
    /// prediction falls back to the descend walk.
    pub(crate) index: Option<ContextIndex>,
    /// Frozen SoA/CSR arena, compiled by `finalize`; the serving read path.
    pub(crate) frozen: Option<FrozenTree>,
    /// Adaptive choice between the frozen descent and the fingerprint
    /// index, made at finalize from measured bucket occupancy.
    pub(crate) strategy: MatchStrategy,
}

impl Default for LrsPpm {
    fn default() -> Self {
        Self::new()
    }
}

impl LrsPpm {
    /// Creates an LRS model with the paper's support threshold of 2.
    pub fn new() -> Self {
        Self::with_support(DEFAULT_MIN_SUPPORT)
    }

    /// Creates an LRS model with a custom support threshold (≥ 1).
    pub fn with_support(min_support: u64) -> Self {
        Self {
            tree: Tree::new(),
            min_support: min_support.max(1),
            max_height: usize::from(u8::MAX),
            finalized: false,
            index: None,
            frozen: None,
            strategy: MatchStrategy::FrozenScan,
        }
    }

    /// Caps the height of the training forest (defaults to unbounded; the
    /// original design keeps whole repeating sessions).
    pub fn with_max_height(mut self, h: u8) -> Self {
        self.max_height = usize::from(h).max(1);
        self
    }

    /// Read-only access to the underlying tree (tests, rendering).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Trains on every session, deterministically parallel: contiguous
    /// session partitions grow private partial forests which merge back in
    /// partition order ([`Tree::merge_from`]) — bit-identical to a
    /// sequential [`Predictor::train_session`] loop at every thread count
    /// (`0` = auto via `PBPPM_THREADS`/available parallelism). The LRS
    /// support cut happens wholly in [`Predictor::finalize`], after the
    /// merge, so it sees the same counts either way.
    pub fn train_sessions<S: AsRef<[UrlId]> + Sync>(&mut self, sessions: &[S], threads: usize) {
        debug_assert!(!self.finalized, "train_sessions after finalize");
        let threads = crate::parallel::resolve_threads(threads).min(sessions.len().max(1));
        if threads <= 1 {
            for s in sessions {
                self.train_session(s.as_ref());
            }
            return;
        }
        let h = self.max_height;
        let ranges = crate::parallel::partition_ranges(sessions.len(), threads);
        let donors = crate::parallel::parallel_map_with(&ranges, threads, |r| {
            let mut tree = Tree::new();
            for s in &sessions[r.clone()] {
                let s = s.as_ref();
                for start in 0..s.len() {
                    tree.insert_path(&s[start..], h);
                }
            }
            tree
        });
        for donor in &donors {
            self.tree.merge_from(donor);
        }
    }

    /// Serializes the trained model for persistence.
    pub fn to_snapshot(&self) -> LrsSnapshot {
        LrsSnapshot {
            tree: self.tree.to_snapshot(),
            min_support: self.min_support,
            max_height: self.max_height,
            finalized: self.finalized,
            frozen: self.frozen.clone(),
        }
    }

    /// Restores a model from a snapshot.
    ///
    /// The frozen arena is always **rebuilt** from the decoded tree —
    /// never adopted from the snapshot — so a tampered frozen section can
    /// at worst fail the audit's persisted-vs-rebuilt comparison, not skew
    /// predictions.
    pub fn from_snapshot(snap: &LrsSnapshot) -> Result<Self, crate::tree::SnapshotError> {
        let mut tree = Tree::from_snapshot(&snap.tree)?;
        let index = snap.finalized.then(|| ContextIndex::full_paths(&mut tree));
        let strategy = index.as_ref().map_or(MatchStrategy::FrozenScan, |ix| {
            choose_strategy(ix.len(), ix.occupancy())
        });
        let frozen = snap.finalized.then(|| tree.freeze(None));
        Ok(Self {
            tree,
            min_support: snap.min_support,
            max_height: snap.max_height,
            finalized: snap.finalized,
            index,
            frozen,
            strategy,
        })
    }

    /// The frozen serving arena, if finalized.
    pub fn frozen(&self) -> Option<&FrozenTree> {
        self.frozen.as_ref()
    }

    /// Test/bench hook: overrides the adaptive strategy choice. Not part of
    /// the public API.
    #[doc(hidden)]
    pub fn force_strategy(&mut self, strategy: MatchStrategy) {
        self.strategy = strategy;
    }

    /// The longest predictive context match, served from the frozen arena
    /// when one exists. Tallies which matching mechanism answered into
    /// `usage`.
    fn matched_node(&self, context: &[UrlId], usage: &mut PredictUsage) -> Option<NodeId> {
        if let Some(frozen) = &self.frozen {
            usage.index_fast += 1;
            if self.strategy == MatchStrategy::FingerprintIndex {
                if let Some(index) = &self.index {
                    let mut hashes = ContextHashes::new();
                    return index.longest_predictive(
                        &self.tree,
                        context,
                        self.max_height,
                        &mut hashes,
                    );
                }
            }
            return frozen
                .longest_predictive(context, self.max_height)
                .map(NodeId);
        }
        match &self.index {
            Some(index) => {
                usage.index_fast += 1;
                let mut hashes = ContextHashes::new();
                index.longest_predictive(&self.tree, context, self.max_height, &mut hashes)
            }
            None => {
                usage.index_fallback += 1;
                self.tree.longest_predictive_match(context, self.max_height)
            }
        }
    }

    /// Pointer-arena prediction path: the fingerprint/descend walk over the
    /// heap tree, bypassing the frozen arrays. Kept as the bench comparator
    /// for `frozen_ns_per_click` vs `pointer_ns_per_click`. Not part of the
    /// public API.
    #[doc(hidden)]
    pub fn predict_pointer(
        &self,
        context: &[UrlId],
        out: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) {
        out.clear();
        if context.is_empty() {
            return;
        }
        let node = match &self.index {
            Some(index) => {
                let mut hashes = ContextHashes::new();
                index.longest_predictive(&self.tree, context, self.max_height, &mut hashes)
            }
            None => self.tree.longest_predictive_match(context, self.max_height),
        };
        let Some(node) = node else { return };
        let parent_count = self.tree.node(node).count;
        if parent_count == 0 {
            return;
        }
        usage.used_paths.push(node);
        for (url, child, count) in self.tree.children_of(node) {
            out.push(Prediction::new(url, count as f64 / parent_count as f64));
            usage.used_nodes.push(child);
        }
        rank_predictions(out, usize::MAX);
    }

    /// Reference prediction path: the original descend-per-suffix walk,
    /// kept as the ground truth the hashed fast path is property-tested
    /// against.
    pub fn predict_reference(&self, context: &[UrlId], out: &mut Vec<Prediction>) {
        out.clear();
        if context.is_empty() {
            return;
        }
        let Some(node) = self.tree.longest_predictive_match(context, self.max_height) else {
            return;
        };
        let parent_count = self.tree.node(node).count;
        if parent_count == 0 {
            return;
        }
        for (url, _, count) in self.tree.children_of(node) {
            out.push(Prediction::new(url, count as f64 / parent_count as f64));
        }
        rank_predictions(out, usize::MAX);
    }
}

/// A serializable image of a trained [`LrsPpm`] model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LrsSnapshot {
    /// The extracted repeating forest.
    pub tree: crate::tree::TreeSnapshot,
    /// Occurrence threshold nodes had to clear at finalize.
    pub min_support: u64,
    /// Branch height cap used during training.
    pub max_height: usize,
    /// Whether [`Predictor::finalize`] had run.
    pub finalized: bool,
    /// The frozen arena as it was when saved (format v2+). Loading rebuilds
    /// the serving arena from `tree`; this copy exists so `pbppm audit` can
    /// cross-check what was persisted against the rebuild.
    pub frozen: Option<crate::frozen::FrozenTree>,
}

impl Predictor for LrsPpm {
    fn kind(&self) -> ModelKind {
        ModelKind::Lrs
    }

    fn train_session(&mut self, session: &[UrlId]) {
        debug_assert!(!self.finalized, "train_session after finalize");
        for start in 0..session.len() {
            self.tree.insert_path(&session[start..], self.max_height);
        }
    }

    /// Extracts the repeating subsequences: kills every node with fewer than
    /// `min_support` traversals and compacts the arena.
    fn finalize(&mut self) {
        debug_assert!(!self.finalized, "finalize called twice");
        let victims: Vec<_> = self
            .tree
            .iter_alive()
            .filter(|&id| self.tree.node(id).count < self.min_support)
            .collect();
        for id in victims {
            self.tree.kill_subtree(id);
        }
        self.tree.compact();
        let index = ContextIndex::full_paths(&mut self.tree);
        self.strategy = choose_strategy(index.len(), index.occupancy());
        self.index = Some(index);
        self.frozen = Some(self.tree.freeze(None));
        self.finalized = true;
        crate::verify::runtime_audit(&crate::verify::ModelRef::Lrs(self), "LrsPpm::finalize");
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        debug_assert!(self.finalized, "predict before finalize");
        out.clear();
        if context.is_empty() {
            return;
        }
        let Some(node) = self.matched_node(context, usage) else {
            return;
        };
        if let Some(frozen) = &self.frozen {
            // Serve the vote loop from the frozen CSR row: the children are
            // adjacent and all alive, so this is one linear pass. The whole
            // row votes, so usage records the row once (`used_child_rows`)
            // instead of pushing every child, and the row's URL keys are
            // distinct by construction, so ranking can skip the dedup set.
            let parent_count = frozen.count(node.0);
            if parent_count == 0 {
                return;
            }
            usage.used_paths.push(node);
            usage.used_child_rows.push(node);
            for &(url, child) in frozen.children(node.0) {
                out.push(Prediction::new(
                    url,
                    frozen.count(child) as f64 / parent_count as f64,
                ));
            }
            crate::predictor::rank_distinct_predictions(out);
            return;
        }
        let parent_count = self.tree.node(node).count;
        if parent_count == 0 {
            return;
        }
        usage.used_paths.push(node);
        for (url, child, count) in self.tree.children_of(node) {
            out.push(Prediction::new(url, count as f64 / parent_count as f64));
            usage.used_nodes.push(child);
        }
        rank_predictions(out, usize::MAX);
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        for &id in &usage.used_paths {
            self.tree.mark_path_used(id);
        }
        for &id in &usage.used_nodes {
            self.tree.mark_used(id);
        }
        for &id in &usage.used_child_rows {
            self.tree.mark_children_used(id);
        }
    }

    fn frozen(&self) -> Option<&crate::frozen::FrozenTree> {
        self.frozen.as_ref()
    }

    fn match_strategy(&self) -> Option<MatchStrategy> {
        self.frozen.as_ref().map(|_| self.strategy)
    }

    fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    fn stats(&self) -> ModelStats {
        let stats = ModelStats::of_tree(&self.tree);
        match &self.index {
            Some(index) => stats.with_index(index),
            None => stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn frozen_predict_matches_pointer_predict_under_both_strategies() {
        let mut m = LrsPpm::new();
        for _ in 0..2 {
            m.train_session(&[u(0), u(1), u(3)]);
            m.train_session(&[u(9), u(1), u(4)]);
        }
        m.train_session(&[u(0), u(1), u(5)]);
        m.finalize();
        let contexts = [
            vec![u(0)],
            vec![u(0), u(1)],
            vec![u(9), u(1)],
            vec![u(1)],
            vec![u(7)],
        ];
        for strategy in [MatchStrategy::FrozenScan, MatchStrategy::FingerprintIndex] {
            m.force_strategy(strategy);
            for ctx in &contexts {
                let (mut frozen_out, mut pointer_out) = (Vec::new(), Vec::new());
                m.predict_ro(ctx, &mut frozen_out, &mut PredictUsage::default());
                m.predict_pointer(ctx, &mut pointer_out, &mut PredictUsage::default());
                assert_eq!(frozen_out, pointer_out, "{strategy:?} ctx {ctx:?}");
            }
        }
    }

    /// The paper's Figure 1 (right-of-left pair): the LRS tree for
    /// `A B C A' B' C'` seen once keeps nothing — nothing repeats.
    #[test]
    fn single_occurrence_keeps_nothing() {
        let mut m = LrsPpm::new();
        m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
        m.finalize();
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn repeated_sequences_survive() {
        let mut m = LrsPpm::new();
        m.train_session(&[u(0), u(1), u(2)]);
        m.train_session(&[u(0), u(1), u(3)]);
        m.finalize();
        // 0->1 repeats (twice); 1 as a suffix root repeats; 2 and 3 do not.
        assert!(m.tree().descend(&[u(0), u(1)]).is_some());
        assert!(m.tree().descend(&[u(0), u(1), u(2)]).is_none());
        assert!(m.tree().descend(&[u(1)]).is_some());
        assert!(m.tree().descend(&[u(2)]).is_none());
        // Surviving nodes: 0, 0->1, 1 root.
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn suffix_copies_are_kept_separately() {
        // The "cut and paste" duplication: the repeating sequence A B C is
        // stored under A, under B, and under C.
        let mut m = LrsPpm::new();
        m.train_session(&[u(0), u(1), u(2)]);
        m.train_session(&[u(0), u(1), u(2)]);
        m.finalize();
        assert!(m.tree().descend(&[u(0), u(1), u(2)]).is_some());
        assert!(m.tree().descend(&[u(1), u(2)]).is_some());
        assert!(m.tree().descend(&[u(2)]).is_some());
        assert_eq!(m.node_count(), 6);
    }

    #[test]
    fn predicts_only_from_repeating_paths() {
        let mut m = LrsPpm::new();
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(2)]); // seen once: pruned
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].url, u(1));
        // Probability uses the *original* counts: 2 of 3 accesses to 0 led
        // to 1.
        assert!((out[0].prob - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_or_unrepeated_context_predicts_nothing() {
        let mut m = LrsPpm::new();
        m.train_session(&[u(0), u(1)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn custom_support_threshold() {
        let mut m = LrsPpm::with_support(3);
        for _ in 0..2 {
            m.train_session(&[u(0), u(1)]);
        }
        m.train_session(&[u(0), u(2)]);
        m.finalize();
        // Root 0 has count 3 and survives; both children have < 3.
        assert_eq!(m.node_count(), 1);
    }

    #[test]
    fn grows_faster_than_its_pruned_size_suggests() {
        // Before finalize the LRS training forest is a full standard forest.
        let mut m = LrsPpm::new();
        m.train_session(&[u(0), u(1), u(2), u(3)]);
        assert_eq!(m.tree().arena_len(), 4 + 3 + 2 + 1);
        m.finalize();
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_predictions() {
        let mut m = LrsPpm::new();
        for _ in 0..3 {
            m.train_session(&[u(0), u(1), u(2)]);
        }
        m.finalize();
        let mut before = Vec::new();
        m.predict(&[u(0)], &mut before);
        let mut back = LrsPpm::from_snapshot(&m.to_snapshot()).unwrap();
        assert_eq!(back.node_count(), m.node_count());
        let mut after = Vec::new();
        back.predict(&[u(0)], &mut after);
        assert_eq!(before, after);
    }

    #[test]
    fn longest_match_is_used() {
        let mut m = LrsPpm::new();
        for _ in 0..2 {
            m.train_session(&[u(0), u(1), u(3)]);
            m.train_session(&[u(9), u(1), u(4)]);
        }
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(0), u(1)], &mut out);
        assert_eq!(out[0].url, u(3), "order-2 match must win over root 1");
        assert!((out[0].prob - 1.0).abs() < 1e-12);
    }
}
