//! Determinism guarantee of parallel training: for every model family and
//! every thread count, `train_sessions` must be **bit-identical** to the
//! sequential `train_session` loop — same arena order, same counts, same
//! serialized snapshot bytes. This is the contract that lets `--threads`
//! default on without ever changing a result.

use pbppm_core::{
    LrsPpm, PbConfig, PbPpm, PopularityBuilder, PopularityTable, Predictor, StandardPpm, UrlId,
};
use proptest::prelude::*;

const THREAD_GRID: [usize; 3] = [1, 2, 8];

fn sessions_strategy(
    urls: u32,
    max_len: usize,
    max_sessions: usize,
) -> BoxedStrategy<Vec<Vec<UrlId>>> {
    prop::collection::vec(
        prop::collection::vec((0..urls).prop_map(UrlId), 1..max_len),
        0..max_sessions,
    )
    .boxed()
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

fn pop_from(sessions: &[Vec<UrlId>]) -> PopularityTable {
    let mut b = PopularityTable::builder();
    for s in sessions {
        for &u in s {
            b.record(u);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel popularity counting sums to exactly the sequential table.
    #[test]
    fn parallel_popularity_counts_match_sequential(
        sessions in sessions_strategy(12, 9, 24),
    ) {
        let seq = json(&pop_from(&sessions));
        for threads in THREAD_GRID {
            let par = PopularityBuilder::count_sessions(&sessions, threads).build();
            prop_assert_eq!(&seq, &json(&par), "threads={}", threads);
        }
    }

    /// Standard PPM: partitioned training + merge reproduces the sequential
    /// arena (and therefore the snapshot bytes) at every thread count.
    #[test]
    fn parallel_standard_training_is_bit_identical(
        sessions in sessions_strategy(10, 8, 24),
        height in 1u8..6,
        bounded in 0u8..2,
    ) {
        let max_height = (bounded == 1).then_some(height);
        let mut seq = StandardPpm::new(max_height);
        for s in &sessions {
            seq.train_session(s);
        }
        seq.finalize();
        let seq_tree = seq.tree().to_snapshot();
        let seq_bytes = json(&seq.to_snapshot());
        for threads in THREAD_GRID {
            let mut par = StandardPpm::new(max_height);
            par.train_sessions(&sessions, threads);
            par.finalize();
            prop_assert_eq!(&seq_tree, &par.tree().to_snapshot(), "threads={}", threads);
            prop_assert_eq!(&seq_bytes, &json(&par.to_snapshot()), "threads={}", threads);
        }
    }

    /// LRS-PPM: the support cut runs wholly in finalize, after the merge,
    /// so parallel training commutes with it bit-for-bit.
    #[test]
    fn parallel_lrs_training_is_bit_identical(
        sessions in sessions_strategy(8, 8, 24),
        support in 1u64..4,
    ) {
        let mut seq = LrsPpm::with_support(support);
        for s in &sessions {
            seq.train_session(s);
        }
        seq.finalize();
        let seq_tree = seq.tree().to_snapshot();
        let seq_bytes = json(&seq.to_snapshot());
        for threads in THREAD_GRID {
            let mut par = LrsPpm::with_support(support);
            par.train_sessions(&sessions, threads);
            par.finalize();
            prop_assert_eq!(&seq_tree, &par.tree().to_snapshot(), "threads={}", threads);
            prop_assert_eq!(&seq_bytes, &json(&par.to_snapshot()), "threads={}", threads);
        }
    }

    /// PB-PPM: per-session rule decisions depend only on the frozen
    /// popularity table and the session itself, so partition + merge is
    /// bit-identical — including rule-3 special links and finalize pruning.
    #[test]
    fn parallel_pb_training_is_bit_identical(
        sessions in sessions_strategy(10, 8, 24),
        special_links in 0u8..2,
    ) {
        let pop = pop_from(&sessions);
        let cfg = PbConfig {
            special_links: special_links == 1,
            ..PbConfig::default()
        };
        let mut seq = PbPpm::new(pop.clone(), cfg);
        for s in &sessions {
            seq.train_session(s);
        }
        seq.finalize();
        let seq_tree = seq.tree().to_snapshot();
        let seq_bytes = json(&seq.to_snapshot());
        for threads in THREAD_GRID {
            let mut par = PbPpm::new(pop.clone(), cfg);
            par.train_sessions(&sessions, threads);
            par.finalize();
            prop_assert_eq!(&seq_tree, &par.tree().to_snapshot(), "threads={}", threads);
            prop_assert_eq!(&seq_bytes, &json(&par.to_snapshot()), "threads={}", threads);
        }
    }
}

/// More threads than sessions degrades gracefully (empty partitions are
/// dropped, never panicking, still identical).
#[test]
fn more_threads_than_sessions() {
    let sessions: Vec<Vec<UrlId>> = vec![vec![UrlId(0), UrlId(1), UrlId(0)]];
    let mut seq = StandardPpm::unbounded();
    for s in &sessions {
        seq.train_session(s);
    }
    seq.finalize();
    let mut par = StandardPpm::unbounded();
    par.train_sessions(&sessions, 16);
    par.finalize();
    assert_eq!(seq.tree().to_snapshot(), par.tree().to_snapshot());
}

#[test]
fn empty_session_list_is_a_no_op() {
    let sessions: Vec<Vec<UrlId>> = Vec::new();
    let mut par = PbPpm::new(
        PopularityTable::from_counts(vec![3, 2, 1]),
        PbConfig::default(),
    );
    par.train_sessions(&sessions, 8);
    par.finalize();
    let mut seq = PbPpm::new(
        PopularityTable::from_counts(vec![3, 2, 1]),
        PbConfig::default(),
    );
    seq.finalize();
    assert_eq!(seq.tree().to_snapshot(), par.tree().to_snapshot());
}
