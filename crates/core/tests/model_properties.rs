//! Property tests checking the models against brute-force reference
//! implementations.

use pbppm_core::{
    Grade, LrsPpm, PbConfig, PbPpm, PopularityTable, Prediction, Predictor, PruneConfig,
    StandardPpm, UrlId,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn sessions_strategy(
    urls: u32,
    max_len: usize,
    max_sessions: usize,
) -> BoxedStrategy<Vec<Vec<UrlId>>> {
    prop::collection::vec(
        prop::collection::vec((0..urls).prop_map(UrlId), 1..max_len),
        1..max_sessions,
    )
    .boxed()
}

// ------------------------------------------------------------ standard PPM

/// Brute-force next-URL distribution for the *longest* context suffix that
/// (a) occurred in training as a contiguous subsequence with a successor and
/// (b) is at most `max_order` long.
fn reference_standard_predict(
    sessions: &[Vec<UrlId>],
    context: &[UrlId],
    max_order: usize,
) -> Option<HashMap<UrlId, (u64, u64)>> {
    let longest = context.len().min(max_order);
    for k in (1..=longest).rev() {
        let suffix = &context[context.len() - k..];
        let mut occurrences = 0u64;
        let mut nexts: HashMap<UrlId, u64> = HashMap::new();
        for s in sessions {
            if s.len() < k {
                continue;
            }
            for start in 0..=s.len() - k {
                if &s[start..start + k] == suffix {
                    occurrences += 1;
                    if start + k < s.len() {
                        *nexts.entry(s[start + k]).or_default() += 1;
                    }
                }
            }
        }
        if !nexts.is_empty() {
            return Some(
                nexts
                    .into_iter()
                    .map(|(url, count)| (url, (count, occurrences)))
                    .collect(),
            );
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The standard PPM's predictions match a brute-force scan of the
    /// training sessions: same support set, same count/occurrence ratios.
    #[test]
    fn standard_ppm_matches_brute_force(
        sessions in sessions_strategy(8, 7, 20),
        ctx_session in 0usize..20,
        ctx_len in 1usize..5,
    ) {
        let mut model = StandardPpm::unbounded();
        for s in &sessions {
            model.train_session(s);
        }
        model.finalize();

        let src = &sessions[ctx_session % sessions.len()];
        let context = &src[..ctx_len.min(src.len())];

        let mut out: Vec<Prediction> = Vec::new();
        model.predict(context, &mut out);
        let reference = reference_standard_predict(&sessions, context, usize::from(u8::MAX));

        match reference {
            None => prop_assert!(out.is_empty(), "model predicted {:?}, reference nothing", out),
            Some(map) => {
                prop_assert_eq!(out.len(), map.len());
                for p in &out {
                    let &(count, total) = map.get(&p.url).expect("unexpected prediction");
                    let expected = count as f64 / total as f64;
                    prop_assert!((p.prob - expected).abs() < 1e-9,
                        "url {:?}: {} vs {}", p.url, p.prob, expected);
                }
            }
        }
    }
}

// -------------------------------------------------------------------- LRS

/// Brute force: the set of contiguous subsequences occurring at least
/// `support` times across all sessions (counting every occurrence,
/// overlapping included) — exactly the paths the LRS tree must retain.
fn reference_repeating_subsequences(sessions: &[Vec<UrlId>], support: u64) -> HashSet<Vec<UrlId>> {
    let mut counts: HashMap<Vec<UrlId>, u64> = HashMap::new();
    for s in sessions {
        for start in 0..s.len() {
            for end in start + 1..=s.len() {
                *counts.entry(s[start..end].to_vec()).or_default() += 1;
            }
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= support)
        .map(|(seq, _)| seq)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After finalize, the LRS tree contains a root-anchored path for a
    /// sequence iff the sequence repeats (>= 2 occurrences) in training.
    #[test]
    fn lrs_retains_exactly_the_repeating_subsequences(
        sessions in sessions_strategy(5, 6, 12),
    ) {
        let mut model = LrsPpm::new();
        for s in &sessions {
            model.train_session(s);
        }
        model.finalize();
        let repeating = reference_repeating_subsequences(&sessions, 2);

        // Every repeating subsequence must be a walkable path.
        for seq in &repeating {
            prop_assert!(
                model.tree().descend(seq).is_some(),
                "repeating {:?} missing from the LRS tree", seq
            );
        }
        // Every walkable root-to-node path must repeat. Enumerate paths by
        // DFS over the (small) tree.
        let tree = model.tree();
        for root in tree.iter_roots() {
            let mut stack = vec![(root, vec![tree.node(root).url])];
            while let Some((node, path)) = stack.pop() {
                prop_assert!(
                    repeating.contains(&path),
                    "stored path {:?} does not repeat in training", path
                );
                for (url, child, _) in tree.children_of(node) {
                    let mut next = path.clone();
                    next.push(url);
                    stack.push((child, next));
                }
            }
        }
    }
}

// ----------------------------------------------------------------- PB-PPM

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants of the PB tree for random popularity tables:
    /// branch heights never exceed the grade cap of their head, root URLs
    /// are session heads or grade ascents, and pruning is monotone.
    #[test]
    fn pb_tree_invariants(
        sessions in sessions_strategy(10, 8, 16),
        counts in prop::collection::vec(0u64..2000, 10),
    ) {
        let pop = PopularityTable::from_counts(counts);
        let cfg = PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        };
        let mut model = PbPpm::new(pop.clone(), cfg);
        for s in &sessions {
            model.train_session(s);
        }
        let unpruned_nodes = model.node_count();
        model.finalize();
        prop_assert_eq!(model.node_count(), unpruned_nodes, "disabled prune must not shrink");

        let tree = model.tree();
        // Height caps: walk each root, depth bounded by its head's grade.
        for root in tree.iter_roots() {
            let head_grade = pop.grade(tree.node(root).url);
            let cap = cfg.height_for(head_grade);
            let mut stack = vec![(root, 1u8)];
            while let Some((node, depth)) = stack.pop() {
                prop_assert!(depth <= cap,
                    "depth {} exceeds cap {} for grade {:?}", depth, cap, head_grade);
                for (_, child, _) in tree.children_of(node) {
                    stack.push((child, depth + 1));
                }
            }
        }
        // Root rule: every root URL appears as a session head or as a
        // grade ascent somewhere in training.
        let mut legal_roots: HashSet<UrlId> = HashSet::new();
        for s in &sessions {
            legal_roots.insert(s[0]);
            for w in s.windows(2) {
                if pop.grade(w[1]) > pop.grade(w[0]) {
                    legal_roots.insert(w[1]);
                }
            }
        }
        for root in tree.iter_roots() {
            prop_assert!(legal_roots.contains(&tree.node(root).url));
        }

        // Pruning monotonicity, and grade-3 links only.
        let mut pruned = PbPpm::new(pop.clone(), PbConfig {
            prune: PruneConfig::aggressive(),
            ..cfg
        });
        for s in &sessions {
            pruned.train_session(s);
        }
        pruned.finalize();
        prop_assert!(pruned.node_count() <= unpruned_nodes);

        // Link targets are either above their head's grade or grade 3.
        for root in tree.iter_roots() {
            let head_grade = pop.grade(tree.node(root).url);
            for link in tree.links_of(root) {
                let g = pop.grade(tree.node(link).url);
                prop_assert!(g > head_grade || g == Grade::MAX);
            }
        }
    }

    /// The hashed fast path gives exactly the predictions of the retained
    /// occurrence-scan / tree-walk reference implementations — same URLs,
    /// same ranks, same (bit-identical) probabilities — for all three tree
    /// models, across random traces and every prefix context of every
    /// training session plus unseen contexts.
    #[test]
    fn fast_path_is_bit_identical_to_reference(
        sessions in sessions_strategy(9, 8, 18),
        counts in prop::collection::vec(0u64..2000, 9),
    ) {
        let pop = PopularityTable::from_counts(counts);
        let mut pb = PbPpm::new(pop, PbConfig::default());
        let mut standard = StandardPpm::unbounded();
        let mut lrs = LrsPpm::new();
        for s in &sessions {
            pb.train_session(s);
            standard.train_session(s);
            lrs.train_session(s);
        }
        pb.finalize();
        standard.finalize();
        lrs.finalize();

        let mut contexts: Vec<Vec<UrlId>> = Vec::new();
        for s in &sessions {
            for i in 0..s.len() {
                contexts.push(s[..=i].to_vec());
            }
        }
        // Contexts the models never saw, including unknown URLs.
        contexts.push(vec![UrlId(100)]);
        contexts.push(vec![UrlId(100), sessions[0][0]]);
        contexts.push(sessions[0].iter().rev().copied().collect());

        let mut fast = Vec::new();
        let mut slow = Vec::new();
        for context in &contexts {
            pb.predict(context, &mut fast);
            pb.predict_reference(context, &mut slow);
            prop_assert_eq!(&fast, &slow, "PB-PPM diverged on {:?}", context);

            standard.predict(context, &mut fast);
            standard.predict_reference(context, &mut slow);
            prop_assert_eq!(&fast, &slow, "standard PPM diverged on {:?}", context);

            lrs.predict(context, &mut fast);
            lrs.predict_reference(context, &mut slow);
            prop_assert_eq!(&fast, &slow, "LRS diverged on {:?}", context);
        }
    }

    /// The frozen SoA/CSR serving path emits bit-identical predictions to
    /// the retained pointer-tree fast path, for all three tree models and
    /// under both forced match strategies — so the adaptive selector can
    /// never change *what* is predicted, only how fast.
    #[test]
    fn frozen_predict_is_bit_identical_to_pointer_predict(
        sessions in sessions_strategy(9, 8, 18),
        counts in prop::collection::vec(0u64..2000, 9),
    ) {
        use pbppm_core::{MatchStrategy, PredictUsage};
        let pop = PopularityTable::from_counts(counts);
        let mut pb = PbPpm::new(pop, PbConfig::default());
        let mut standard = StandardPpm::unbounded();
        let mut lrs = LrsPpm::new();
        for s in &sessions {
            pb.train_session(s);
            standard.train_session(s);
            lrs.train_session(s);
        }
        pb.finalize();
        standard.finalize();
        lrs.finalize();
        prop_assert!(pb.frozen().is_some(), "finalize must compile a PB arena");
        prop_assert!(standard.frozen().is_some(), "finalize must compile a PPM arena");
        prop_assert!(lrs.frozen().is_some(), "finalize must compile an LRS arena");

        let mut contexts: Vec<Vec<UrlId>> = Vec::new();
        for s in &sessions {
            for i in 0..s.len() {
                contexts.push(s[..=i].to_vec());
            }
        }
        // Contexts the models never saw, including unknown URLs.
        contexts.push(vec![UrlId(100)]);
        contexts.push(vec![UrlId(100), sessions[0][0]]);
        contexts.push(sessions[0].iter().rev().copied().collect());

        let mut usage = PredictUsage::default();
        let mut frozen_out = Vec::new();
        let mut pointer_out = Vec::new();
        for strategy in [MatchStrategy::FingerprintIndex, MatchStrategy::FrozenScan] {
            pb.force_strategy(strategy);
            standard.force_strategy(strategy);
            lrs.force_strategy(strategy);
            for context in &contexts {
                usage.clear();
                pb.predict_ro(context, &mut frozen_out, &mut usage);
                usage.clear();
                pb.predict_pointer(context, &mut pointer_out, &mut usage);
                prop_assert_eq!(&frozen_out, &pointer_out,
                    "PB-PPM diverged on {:?} under {:?}", context, strategy);

                usage.clear();
                standard.predict_ro(context, &mut frozen_out, &mut usage);
                usage.clear();
                standard.predict_pointer(context, &mut pointer_out, &mut usage);
                prop_assert_eq!(&frozen_out, &pointer_out,
                    "standard PPM diverged on {:?} under {:?}", context, strategy);

                usage.clear();
                lrs.predict_ro(context, &mut frozen_out, &mut usage);
                usage.clear();
                lrs.predict_pointer(context, &mut pointer_out, &mut usage);
                prop_assert_eq!(&frozen_out, &pointer_out,
                    "LRS diverged on {:?} under {:?}", context, strategy);
            }
        }
    }

    /// Snapshot roundtrips preserve the frozen arena: the restored model
    /// recompiles an arena equal to the one that was persisted, and its
    /// predictions are bit-identical to the original's — including through
    /// the full byte codec.
    #[test]
    fn snapshot_roundtrip_preserves_frozen_arena_and_predictions(
        sessions in sessions_strategy(8, 7, 14),
        counts in prop::collection::vec(0u64..2000, 8),
    ) {
        use pbppm_core::{ModelImage, PredictUsage, SnapshotFile};
        let pop = PopularityTable::from_counts(counts);
        let mut pb = PbPpm::new(pop, PbConfig::default());
        let mut standard = StandardPpm::unbounded();
        let mut lrs = LrsPpm::new();
        for s in &sessions {
            pb.train_session(s);
            standard.train_session(s);
            lrs.train_session(s);
        }
        pb.finalize();
        standard.finalize();
        lrs.finalize();

        let pb2 = PbPpm::from_snapshot(&pb.to_snapshot()).expect("PB snapshot loads");
        let standard2 =
            StandardPpm::from_snapshot(&standard.to_snapshot()).expect("PPM snapshot loads");
        let lrs2 = LrsPpm::from_snapshot(&lrs.to_snapshot()).expect("LRS snapshot loads");
        prop_assert_eq!(pb.frozen(), pb2.frozen());
        prop_assert_eq!(standard.frozen(), standard2.frozen());
        prop_assert_eq!(lrs.frozen(), lrs2.frozen());

        // Full byte codec for the PB image: the persisted frozen section
        // survives encode/decode and the decoded model still recompiles an
        // identical arena.
        let file = SnapshotFile {
            urls: (0..8).map(|i| format!("/p{i}")).collect(),
            model: ModelImage::Pb(pb.to_snapshot()),
        };
        let decoded = SnapshotFile::decode(&file.encode()).expect("envelope roundtrips");
        let ModelImage::Pb(snap) = &decoded.model else {
            return Err(TestCaseError::fail("decoded image changed kind"));
        };
        prop_assert_eq!(snap.frozen.as_ref(), pb.frozen());
        let pb3 = PbPpm::from_snapshot(snap).expect("decoded PB snapshot loads");

        let mut contexts: Vec<Vec<UrlId>> = Vec::new();
        for s in &sessions {
            for i in 0..s.len() {
                contexts.push(s[..=i].to_vec());
            }
        }
        let mut usage = PredictUsage::default();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for context in &contexts {
            for (orig, restored) in [(&pb, &pb2), (&pb, &pb3)] {
                usage.clear();
                orig.predict_ro(context, &mut a, &mut usage);
                usage.clear();
                restored.predict_ro(context, &mut b, &mut usage);
                prop_assert_eq!(&a, &b, "restored PB diverged on {:?}", context);
            }
            usage.clear();
            standard.predict_ro(context, &mut a, &mut usage);
            usage.clear();
            standard2.predict_ro(context, &mut b, &mut usage);
            prop_assert_eq!(&a, &b, "restored PPM diverged on {:?}", context);
            usage.clear();
            lrs.predict_ro(context, &mut a, &mut usage);
            usage.clear();
            lrs2.predict_ro(context, &mut b, &mut usage);
            prop_assert_eq!(&a, &b, "restored LRS diverged on {:?}", context);
        }
    }

    /// PB-PPM's branch predictions never exceed probability 1 and are
    /// supported by actual training transitions.
    #[test]
    fn pb_predictions_are_supported_by_training(
        sessions in sessions_strategy(8, 7, 16),
        counts in prop::collection::vec(0u64..2000, 8),
    ) {
        let pop = PopularityTable::from_counts(counts);
        let mut model = PbPpm::new(pop, PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        });
        for s in &sessions {
            model.train_session(s);
        }
        model.finalize();

        // Every (a -> b) adjacency seen anywhere in training.
        let mut adjacent: HashSet<(UrlId, UrlId)> = HashSet::new();
        let mut later: HashSet<(UrlId, UrlId)> = HashSet::new();
        for s in &sessions {
            for w in s.windows(2) {
                adjacent.insert((w[0], w[1]));
            }
            for i in 0..s.len() {
                for j in i + 1..s.len() {
                    later.insert((s[i], s[j]));
                }
            }
        }
        let mut out = Vec::new();
        for s in sessions.iter().take(8) {
            for i in 0..s.len() {
                model.predict(&s[..=i], &mut out);
                for p in &out {
                    prop_assert!(p.prob > 0.0 && p.prob <= 1.0 + 1e-9);
                    // A prediction is justified by a training adjacency from
                    // the current URL, or (via a special link) by the URL
                    // having followed the current one later in a session.
                    prop_assert!(
                        adjacent.contains(&(s[i], p.url)) || later.contains(&(s[i], p.url)),
                        "prediction {:?} after {:?} unsupported by training",
                        p.url, s[i]
                    );
                }
            }
        }
    }
}
