//! Property tests for the snapshot codec: for random traces, every model
//! kind survives an encode → decode → instantiate round trip with
//! bit-identical predictions and (memory-normalized) identical stats.

use pbppm_core::snapshot::{ModelImage, SnapshotFile};
use pbppm_core::{
    LrsPpm, OnlinePbPpm, Order1Markov, PbConfig, PbPpm, PopularityTable, PredictUsage, Prediction,
    Predictor, StandardPpm, UrlId,
};
use proptest::prelude::*;

fn sessions_strategy(
    urls: u32,
    max_len: usize,
    max_sessions: usize,
) -> BoxedStrategy<Vec<Vec<UrlId>>> {
    prop::collection::vec(
        prop::collection::vec((0..urls).prop_map(UrlId), 1..max_len),
        1..max_sessions,
    )
    .boxed()
}

/// URL strings for ids `0..n` — the codec serializes names, not ids.
fn url_names(n: u32) -> Vec<String> {
    (0..n).map(|i| format!("/doc/{i}.html")).collect()
}

/// All prefix contexts of every session, plus contexts the model never saw.
fn probe_contexts(sessions: &[Vec<UrlId>]) -> Vec<Vec<UrlId>> {
    let mut contexts: Vec<Vec<UrlId>> = Vec::new();
    for s in sessions {
        for i in 0..s.len() {
            contexts.push(s[..=i].to_vec());
        }
    }
    contexts.push(vec![UrlId(500)]);
    contexts.push(vec![UrlId(500), sessions[0][0]]);
    contexts.push(sessions[0].iter().rev().copied().collect());
    contexts
}

/// Round-trips `image` through bytes and checks the restored predictor
/// against the original on every probe context: identical prediction lists
/// (bit-identical probabilities) and identical stats apart from
/// `memory_bytes`, which shrinks because `to_snapshot` compacts the arena.
fn assert_roundtrip_identical(
    original: &dyn Predictor,
    image: ModelImage,
    urls: Vec<String>,
    contexts: &[Vec<UrlId>],
) -> Result<(), TestCaseError> {
    let file = SnapshotFile { urls, model: image };
    let bytes = file.encode();
    let back = SnapshotFile::decode(&bytes).expect("decode of fresh encode");
    prop_assert_eq!(&back.urls, &file.urls);
    let restored = back.instantiate().expect("instantiate decoded image");

    let mut want: Vec<Prediction> = Vec::new();
    let mut got: Vec<Prediction> = Vec::new();
    let mut usage = PredictUsage::default();
    for context in contexts {
        original.predict_ro(context, &mut want, &mut usage);
        restored.predict_ro(context, &mut got, &mut usage);
        prop_assert_eq!(&got, &want, "restored model diverged on {:?}", context);
    }

    let (mut sa, mut sb) = (original.stats(), restored.stats());
    prop_assert!(sb.memory_bytes <= sa.memory_bytes);
    sa.memory_bytes = 0;
    sb.memory_bytes = 0;
    prop_assert_eq!(sa, sb);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PB-PPM (with special links and a random popularity table) survives
    /// the codec round trip bit-identically.
    #[test]
    fn pb_ppm_roundtrips(
        sessions in sessions_strategy(9, 8, 16),
        counts in prop::collection::vec(0u64..2000, 9),
    ) {
        let pop = PopularityTable::from_counts(counts);
        let mut m = PbPpm::new(pop, PbConfig::default());
        for s in &sessions {
            m.train_session(s);
        }
        m.finalize();
        let contexts = probe_contexts(&sessions);
        assert_roundtrip_identical(&m, ModelImage::Pb(m.to_snapshot()), url_names(9), &contexts)?;
    }

    /// Standard PPM round trip, both finalized and mid-training.
    #[test]
    fn standard_ppm_roundtrips(
        sessions in sessions_strategy(8, 7, 14),
        finalized in 0u8..2,
    ) {
        let mut m = StandardPpm::unbounded();
        for s in &sessions {
            m.train_session(s);
        }
        if finalized == 1 {
            m.finalize();
        }
        let contexts = probe_contexts(&sessions);
        assert_roundtrip_identical(
            &m,
            ModelImage::Standard(m.to_snapshot()),
            url_names(8),
            &contexts,
        )?;
    }

    /// LRS-PPM round trip (finalize prunes to repeating subsequences; the
    /// snapshot must preserve exactly the pruned tree).
    #[test]
    fn lrs_ppm_roundtrips(sessions in sessions_strategy(6, 7, 14)) {
        let mut m = LrsPpm::new();
        for s in &sessions {
            m.train_session(s);
        }
        m.finalize();
        let contexts = probe_contexts(&sessions);
        assert_roundtrip_identical(&m, ModelImage::Lrs(m.to_snapshot()), url_names(6), &contexts)?;
    }

    /// First-order Markov round trip.
    #[test]
    fn order1_roundtrips(sessions in sessions_strategy(10, 8, 16)) {
        let mut m = Order1Markov::new();
        for s in &sessions {
            m.train_session(s);
        }
        m.finalize();
        let contexts = probe_contexts(&sessions);
        assert_roundtrip_identical(
            &m,
            ModelImage::Order1(m.to_snapshot()),
            url_names(10),
            &contexts,
        )?;
    }

    /// The online wrapper round-trips its whole serving state: window,
    /// popularity tracker, rebuild cadence, and the rebuilt inner model.
    #[test]
    fn online_pb_roundtrips(
        sessions in sessions_strategy(8, 7, 18),
        rebuild_every in 1usize..6,
        window in 4usize..40,
    ) {
        let mut m = OnlinePbPpm::new(PbConfig::default(), window, rebuild_every);
        for s in &sessions {
            m.train_session(s);
        }
        m.finalize();
        let contexts = probe_contexts(&sessions);
        assert_roundtrip_identical(
            &m,
            ModelImage::OnlinePb(m.to_snapshot()),
            url_names(8),
            &contexts,
        )?;

        // Restored wrappers keep *training*, not just predicting: after the
        // same extra session, original and restored agree again.
        let file = SnapshotFile {
            urls: url_names(8),
            model: ModelImage::OnlinePb(m.to_snapshot()),
        };
        let mut restored =
            OnlinePbPpm::from_snapshot(match &SnapshotFile::decode(&file.encode()).unwrap().model {
                ModelImage::OnlinePb(s) => s,
                _ => unreachable!(),
            })
            .unwrap();
        let extra: Vec<UrlId> = sessions[0].clone();
        m.train_session(&extra);
        restored.train_session(&extra);
        m.finalize();
        restored.finalize();
        let mut want = Vec::new();
        let mut got = Vec::new();
        let mut usage = PredictUsage::default();
        for context in &contexts {
            m.predict_ro(context, &mut want, &mut usage);
            restored.predict_ro(context, &mut got, &mut usage);
            prop_assert_eq!(&got, &want, "post-restore training diverged on {:?}", context);
        }
    }

    /// Double round trip is byte-stable: encode(decode(encode(x))) ==
    /// encode(x). This pins the codec to a canonical form, so checkpoint
    /// files never churn when state is unchanged.
    #[test]
    fn encoding_is_canonical(
        sessions in sessions_strategy(7, 6, 12),
        counts in prop::collection::vec(0u64..1500, 7),
    ) {
        let pop = PopularityTable::from_counts(counts);
        let mut m = PbPpm::new(pop, PbConfig::default());
        for s in &sessions {
            m.train_session(s);
        }
        m.finalize();
        let file = SnapshotFile {
            urls: url_names(7),
            model: ModelImage::Pb(m.to_snapshot()),
        };
        let bytes = file.encode();
        let again = SnapshotFile::decode(&bytes).unwrap().encode();
        prop_assert_eq!(again, bytes);
    }
}
