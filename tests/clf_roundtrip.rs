//! Round-trip a synthetic trace through the Common Log Format: the parsed
//! stream must reproduce the original requests exactly.

use pbppm::trace::clf::{format_clf_line, trace_from_clf, ClfRecord};
use pbppm::trace::WorkloadConfig;

#[test]
fn clf_roundtrip_preserves_the_request_stream() {
    let trace = WorkloadConfig::tiny(21).generate();
    let epoch = 804_571_200i64; // 1995-07-01 04:00 UTC, NASA-log style

    let lines: Vec<String> = trace
        .requests
        .iter()
        .map(|r| {
            format_clf_line(&ClfRecord {
                host: format!("client{}", r.client.0),
                time: r.time as i64 + epoch,
                method: "GET".to_owned(),
                path: trace.urls.resolve(r.url).unwrap().to_owned(),
                status: r.status,
                size: r.size,
            })
        })
        .collect();

    let (parsed, stats) = trace_from_clf("roundtrip", &lines);
    assert_eq!(stats.accepted, trace.requests.len());
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.filtered, 0);
    assert_eq!(parsed.requests.len(), trace.requests.len());

    // `trace_from_clf` rebases times so the first accepted request is at 0.
    let base = trace.requests.first().map_or(0, |r| r.time);
    for (orig, back) in trace.requests.iter().zip(&parsed.requests) {
        assert_eq!(orig.time - base, back.time, "times must rebase identically");
        assert_eq!(orig.size, back.size);
        assert_eq!(orig.status, back.status);
        assert_eq!(orig.kind, back.kind);
        assert_eq!(
            trace.urls.resolve(orig.url),
            parsed.urls.resolve(back.url),
            "urls must match"
        );
        assert_eq!(
            format!("client{}", orig.client.0),
            parsed
                .clients
                .resolve(pbppm::core::UrlId(back.client.0))
                .unwrap()
        );
    }
}

#[test]
fn malformed_and_non_get_lines_are_dropped_not_fatal() {
    let good = r#"h1 - - [01/Jul/1995:00:00:01 -0400] "GET /a.html HTTP/1.0" 200 99"#;
    let lines = vec![
        good.to_owned(),
        "total garbage".to_owned(),
        r#"h1 - - [01/Jul/1995:00:00:02 -0400] "POST /form HTTP/1.0" 200 99"#.to_owned(),
        r#"h1 - - [01/Jul/1995:00:00:03 -0400] "GET /missing.html HTTP/1.0" 404 0"#.to_owned(),
        String::new(),
    ];
    let (trace, stats) = trace_from_clf("messy", &lines);
    assert_eq!(trace.requests.len(), 1);
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.malformed, 1);
    assert_eq!(stats.filtered, 2);
}
