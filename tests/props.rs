//! Property-based tests over the core invariants, spanning crates.

#![allow(clippy::cast_possible_truncation)] // tiny generated indices fit u32

use pbppm::core::{
    LrsPpm, PbConfig, PbPpm, PopularityTable, Prediction, Predictor, StandardPpm, UrlId,
};
use pbppm::sim::{Lookup, LruCache};
use pbppm::trace::{sessionize, ClientId, DocKind, Request, SessionizerConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------- LRU cache

/// Reference LRU: a Vec ordered most-recent-first.
#[derive(Default)]
struct RefLru {
    capacity: u64,
    entries: Vec<(u32, u64)>, // (url, size), MRU first
}

impl RefLru {
    fn used(&self) -> u64 {
        self.entries.iter().map(|e| e.1).sum()
    }
    fn demand(&mut self, url: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == url) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, url: u32, size: u64) {
        if size > self.capacity {
            self.entries.retain(|e| e.0 != url);
            return;
        }
        self.entries.retain(|e| e.0 != url);
        self.entries.insert(0, (url, size));
        while self.used() > self.capacity {
            self.entries.pop();
        }
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Demand(u32),
    Insert(u32, u64),
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..20).prop_map(CacheOp::Demand),
            ((0u32..20), (1u64..60)).prop_map(|(u, s)| CacheOp::Insert(u, s)),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in cache_ops(), capacity in 1u64..150) {
        let mut real = LruCache::new(capacity);
        let mut reference = RefLru { capacity, entries: Vec::new() };
        for op in ops {
            match op {
                CacheOp::Demand(u) => {
                    let hit = real.demand(UrlId(u)) != Lookup::Miss;
                    let ref_hit = reference.demand(u);
                    prop_assert_eq!(hit, ref_hit, "demand({}) disagreed", u);
                }
                CacheOp::Insert(u, s) => {
                    real.insert(UrlId(u), s, false);
                    reference.insert(u, s);
                }
            }
            prop_assert!(real.used_bytes() <= capacity);
            prop_assert_eq!(real.used_bytes(), reference.used(), "byte accounting diverged");
            prop_assert_eq!(real.len(), reference.entries.len());
        }
    }
}

// -------------------------------------------------------------- sessionizer

fn request_stream() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0u64..50_000,
            0u32..4,
            0u32..30,
            prop_oneof![
                Just(DocKind::Html),
                Just(DocKind::Image),
                Just(DocKind::Other)
            ],
            1u32..10_000,
        ),
        0..300,
    )
    .prop_map(|tuples| {
        let mut reqs: Vec<Request> = tuples
            .into_iter()
            .map(|(time, client, url, kind, size)| Request {
                time,
                client: ClientId(client),
                url: UrlId(url),
                size,
                status: 200,
                kind,
            })
            .collect();
        reqs.sort_by_key(|r| r.time);
        reqs
    })
}

proptest! {
    #[test]
    fn sessionizer_conserves_bytes_and_order(reqs in request_stream()) {
        let cfg = SessionizerConfig::default();
        let sessions = sessionize(&reqs, &cfg);
        // Bytes are conserved: folded or not, every byte lands in a view.
        let total_in: u64 = reqs.iter().map(|r| u64::from(r.size)).sum();
        let total_out: u64 = sessions.iter().flat_map(|s| &s.views).map(|v| v.bytes).sum();
        prop_assert_eq!(total_in, total_out);
        for s in &sessions {
            prop_assert!(!s.views.is_empty());
            // Views are time-ordered and gaps never exceed the threshold.
            for w in s.views.windows(2) {
                prop_assert!(w[0].time <= w[1].time);
                prop_assert!(w[1].time - w[0].time <= cfg.idle_gap_secs);
            }
        }
        // Sessions of one client do not overlap and are separated by > gap.
        for c in 0..4u32 {
            let mine: Vec<_> = sessions.iter().filter(|s| s.client == ClientId(c)).collect();
            for w in mine.windows(2) {
                let end = w[0].views.last().unwrap().time;
                let start = w[1].views.first().unwrap().time;
                prop_assert!(start > end + cfg.idle_gap_secs,
                    "adjacent sessions too close: {} then {}", end, start);
            }
        }
    }
}

// ------------------------------------------------------------------- models

fn training_sessions() -> impl Strategy<Value = Vec<Vec<UrlId>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..15).prop_map(UrlId), 1..10),
        1..40,
    )
}

fn check_predictions(label: &str, out: &[Prediction], current: UrlId) -> Result<(), TestCaseError> {
    let mut seen = std::collections::HashSet::new();
    for p in out {
        prop_assert!(
            p.prob > 0.0 && p.prob <= 1.0 + 1e-9,
            "{}: prob {}",
            label,
            p.prob
        );
        prop_assert!(seen.insert(p.url), "{}: duplicate prediction", label);
    }
    prop_assert!(
        out.windows(2).all(|w| w[0].prob >= w[1].prob),
        "{}: not sorted",
        label
    );
    // The standard and LRS models never suggest the current document; PB may
    // only do so via a (head-excluded) link, which the policy filters, so we
    // check it uniformly at the model level for the branch-based models.
    let _ = current;
    Ok(())
}

proptest! {
    #[test]
    fn models_emit_valid_probability_rankings(sessions in training_sessions()) {
        let mut counts = PopularityTable::builder();
        for s in &sessions {
            for &u in s {
                counts.record(u);
            }
        }
        let pop = counts.build();

        let mut standard = StandardPpm::unbounded();
        let mut lrs = LrsPpm::new();
        let mut pb = PbPpm::new(pop, PbConfig::default());
        for s in &sessions {
            standard.train_session(s);
            lrs.train_session(s);
            pb.train_session(s);
        }
        standard.finalize();
        lrs.finalize();
        pb.finalize();

        // PB must never store more nodes than the unbounded standard model.
        prop_assert!(pb.node_count() <= standard.node_count());

        let mut out = Vec::new();
        for s in sessions.iter().take(10) {
            for i in 0..s.len() {
                standard.predict(&s[..=i], &mut out);
                check_predictions("standard", &out, s[i])?;
                lrs.predict(&s[..=i], &mut out);
                check_predictions("lrs", &out, s[i])?;
                pb.predict(&s[..=i], &mut out);
                check_predictions("pb", &out, s[i])?;
            }
        }
    }

    #[test]
    fn lrs_is_a_subtree_of_standard(sessions in training_sessions()) {
        let mut standard = StandardPpm::unbounded();
        let mut lrs = LrsPpm::new();
        for s in &sessions {
            standard.train_session(s);
            lrs.train_session(s);
        }
        standard.finalize();
        lrs.finalize();
        prop_assert!(lrs.node_count() <= standard.node_count());
    }

    #[test]
    fn popularity_grades_are_monotone_in_counts(counts in prop::collection::vec(0u64..5000, 2..50)) {
        let table = PopularityTable::from_counts(counts.clone());
        for i in 0..counts.len() {
            for j in 0..counts.len() {
                if counts[i] >= counts[j] {
                    prop_assert!(
                        table.grade(UrlId(i as u32)) >= table.grade(UrlId(j as u32)),
                        "count {} -> {:?} but count {} -> {:?}",
                        counts[i], table.grade(UrlId(i as u32)),
                        counts[j], table.grade(UrlId(j as u32))
                    );
                }
            }
        }
    }
}
