//! End-to-end integration: workload generation → sessionization → training
//! → prefetch simulation, across all three crates via the facade.

use pbppm::core::{PopularityTable, Prediction};
use pbppm::sim::{run_experiment, ExperimentConfig, ModelSpec};
use pbppm::trace::{sessionize_trace, WorkloadConfig};

fn all_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Standard { max_height: None },
        ModelSpec::Standard {
            max_height: Some(3),
        },
        ModelSpec::Lrs,
        ModelSpec::pb_paper(true),
        ModelSpec::pb_paper(false),
        ModelSpec::Order1,
    ]
}

#[test]
fn every_model_trains_and_predicts_on_a_real_workload() {
    let trace = WorkloadConfig::tiny(11).generate();
    let sessions = sessionize_trace(&trace);
    assert!(sessions.len() > 50);

    let mut counts = PopularityTable::builder();
    for s in &sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let pop = counts.build();

    for spec in all_specs() {
        let mut model = spec.build(&sessions, &pop).expect("model");
        assert!(model.node_count() > 0, "{} empty", spec.label());
        // Predict from the first few sessions' prefixes: probabilities must
        // be valid and the current URL never suggested.
        let mut out: Vec<Prediction> = Vec::new();
        let mut any = false;
        for s in sessions.iter().take(50) {
            let urls = s.urls();
            for i in 0..urls.len() {
                model.predict(&urls[..=i], &mut out);
                for p in &out {
                    assert!(
                        p.prob > 0.0 && p.prob <= 1.0 + 1e-9,
                        "{}: bad prob {}",
                        spec.label(),
                        p.prob
                    );
                }
                // Sorted by descending probability.
                assert!(
                    out.windows(2).all(|w| w[0].prob >= w[1].prob),
                    "{}: unsorted predictions",
                    spec.label()
                );
                // No duplicate URLs.
                let mut urls_seen = std::collections::HashSet::new();
                assert!(out.iter().all(|p| urls_seen.insert(p.url)));
                any |= !out.is_empty();
            }
        }
        assert!(any, "{} never predicted anything", spec.label());
    }
}

#[test]
fn experiment_metrics_are_well_formed() {
    let trace = WorkloadConfig::tiny(5).generate();
    for spec in all_specs() {
        let cfg = ExperimentConfig::paper_default(spec, 2);
        let r = run_experiment(&trace, &cfg);
        assert!(r.eval_requests > 0);
        assert!((0.0..=1.0).contains(&r.hit_ratio()), "{}", r.label);
        assert!((0.0..=1.0).contains(&r.baseline_hit_ratio()));
        assert!(r.latency_reduction() <= 1.0);
        assert!(
            r.traffic_increment() >= 0.0,
            "{}: prefetching cannot reduce server transfers",
            r.label
        );
        assert!((0.0..=1.0).contains(&r.popular_prefetch_fraction()));
        assert!((0.0..=1.0).contains(&r.path_utilization()));
        assert_eq!(r.counters.requests, r.baseline.requests);
        assert!(r.counters.hits() <= r.counters.requests);
        assert!(
            r.counters.sent_bytes >= r.baseline.sent_bytes,
            "{}: pushes only add transfers",
            r.label
        );
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let a = {
        let trace = WorkloadConfig::tiny(9).generate();
        let cfg = ExperimentConfig::paper_default(ModelSpec::pb_paper(true), 2);
        run_experiment(&trace, &cfg)
    };
    let b = {
        let trace = WorkloadConfig::tiny(9).generate();
        let cfg = ExperimentConfig::paper_default(ModelSpec::pb_paper(true), 2);
        run_experiment(&trace, &cfg)
    };
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.node_count, b.node_count);
}

#[test]
fn prefetching_never_hurts_the_hit_ratio_on_the_reference_workloads() {
    let trace = WorkloadConfig::tiny(3).generate();
    for spec in all_specs() {
        let cfg = ExperimentConfig::paper_default(spec, 2);
        let r = run_experiment(&trace, &cfg);
        assert!(
            r.hit_ratio() >= r.baseline_hit_ratio() - 1e-9,
            "{}: {} < baseline {}",
            r.label,
            r.hit_ratio(),
            r.baseline_hit_ratio()
        );
    }
}

#[test]
fn zero_and_oversized_training_windows_are_safe() {
    let trace = WorkloadConfig::tiny(2).generate();
    for days in [0usize, 1, 50] {
        let cfg = ExperimentConfig::paper_default(ModelSpec::pb_paper(true), days);
        let r = run_experiment(&trace, &cfg);
        // days >= trace length leaves an empty eval window: must not panic.
        assert!(r.eval_requests == r.counters.requests);
    }
}
