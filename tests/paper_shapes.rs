//! The paper's qualitative results as assertions, on reduced-scale variants
//! of the reference workloads (full scale runs in `pbppm-bench`; these keep
//! the test suite fast while still exercising realistic traces).
//!
//! Tolerances are deliberately generous: these tests pin the *shape* of the
//! reproduction — who wins, and in which direction the curves move — not
//! exact numbers.

use pbppm::sim::{run_experiment, ExperimentConfig, ModelSpec};
use pbppm::trace::{Trace, WorkloadConfig};

fn small_nasa() -> Trace {
    let mut cfg = WorkloadConfig::nasa_like(1);
    cfg.sessions_per_day = 1200;
    cfg.days = 5;
    cfg.n_clients = 500;
    cfg.generate()
}

struct Three {
    ppm: pbppm::sim::RunResult,
    lrs: pbppm::sim::RunResult,
    pb: pbppm::sim::RunResult,
}

fn run_three(trace: &Trace, days: usize) -> Three {
    let run = |spec| run_experiment(trace, &ExperimentConfig::paper_default(spec, days));
    Three {
        ppm: run(ModelSpec::Standard { max_height: None }),
        lrs: run(ModelSpec::Lrs),
        pb: run(ModelSpec::pb_paper(true)),
    }
}

#[test]
fn nasa_hit_ratio_ranking_pb_first() {
    let trace = small_nasa();
    let r = run_three(&trace, 3);
    assert!(
        r.pb.hit_ratio() > r.ppm.hit_ratio(),
        "PB {} vs PPM {}",
        r.pb.hit_ratio(),
        r.ppm.hit_ratio()
    );
    assert!(
        r.pb.hit_ratio() > r.lrs.hit_ratio(),
        "PB {} vs LRS {}",
        r.pb.hit_ratio(),
        r.lrs.hit_ratio()
    );
    // All models beat caching alone.
    assert!(r.ppm.hit_ratio() > r.ppm.baseline_hit_ratio());
    assert!(r.lrs.hit_ratio() > r.lrs.baseline_hit_ratio());
}

#[test]
fn nasa_latency_reduction_pb_first() {
    let trace = small_nasa();
    let r = run_three(&trace, 3);
    assert!(r.pb.latency_reduction() > r.ppm.latency_reduction());
    assert!(r.pb.latency_reduction() > r.lrs.latency_reduction());
}

#[test]
fn space_ranking_ppm_dwarfs_lrs_dwarfs_pb() {
    let trace = small_nasa();
    let r = run_three(&trace, 3);
    assert!(
        r.ppm.node_count > 3 * r.lrs.node_count,
        "PPM {} vs LRS {}",
        r.ppm.node_count,
        r.lrs.node_count
    );
    assert!(
        r.lrs.node_count > 2 * r.pb.node_count,
        "LRS {} vs PB {}",
        r.lrs.node_count,
        r.pb.node_count
    );
}

#[test]
fn space_grows_fastest_for_ppm_and_slowest_for_pb() {
    let trace = small_nasa();
    let one = run_three(&trace, 1);
    let four = run_three(&trace, 4);
    let growth = |a: usize, b: usize| b as f64 / a.max(1) as f64;
    let ppm_growth = growth(one.ppm.node_count, four.ppm.node_count);
    let pb_growth = growth(one.pb.node_count, four.pb.node_count);
    let lrs_growth = growth(one.lrs.node_count, four.lrs.node_count);
    assert!(ppm_growth > 1.5, "standard model must keep growing");
    assert!(
        pb_growth <= lrs_growth * 1.25,
        "PB growth {pb_growth} should not outpace LRS growth {lrs_growth}"
    );
}

#[test]
fn path_utilization_pb_far_above_baselines_and_decaying_for_them() {
    let trace = small_nasa();
    let r = run_three(&trace, 3);
    assert!(
        r.pb.path_utilization() > 2.0 * r.ppm.path_utilization(),
        "PB {} vs PPM {}",
        r.pb.path_utilization(),
        r.ppm.path_utilization()
    );
    assert!(r.pb.path_utilization() > r.lrs.path_utilization());
    // Fig. 2 right: the standard model's utilization decays as the history
    // window grows.
    let early = run_experiment(
        &trace,
        &ExperimentConfig::paper_default(
            ModelSpec::Standard {
                max_height: Some(3),
            },
            1,
        ),
    );
    let late = run_experiment(
        &trace,
        &ExperimentConfig::paper_default(
            ModelSpec::Standard {
                max_height: Some(3),
            },
            4,
        ),
    );
    assert!(
        late.path_utilization() < early.path_utilization(),
        "3-PPM utilization should decay: {} -> {}",
        early.path_utilization(),
        late.path_utilization()
    );
}

#[test]
fn popular_documents_dominate_prefetch_hits() {
    let trace = small_nasa();
    let r = run_three(&trace, 3);
    for (label, res) in [("PPM", &r.ppm), ("LRS", &r.lrs), ("PB", &r.pb)] {
        assert!(
            res.popular_prefetch_fraction() >= 0.6,
            "{label}: popular fraction {}",
            res.popular_prefetch_fraction()
        );
    }
    assert!(r.pb.popular_prefetch_fraction() >= r.ppm.popular_prefetch_fraction() - 0.05);
}

#[test]
fn ucb_margins_shrink_but_pb_stays_cost_effective() {
    let mut cfg = WorkloadConfig::ucb_like(1);
    cfg.sessions_per_day = 1200;
    cfg.days = 4;
    cfg.n_clients = 600;
    let trace = cfg.generate();
    let r = run_three(&trace, 2);
    // PB remains competitive on hits...
    assert!(r.pb.hit_ratio() + 0.05 > r.ppm.hit_ratio());
    // ...while storing a small fraction of the nodes.
    assert!(r.ppm.node_count > 5 * r.pb.node_count);
    assert!(r.lrs.node_count > r.pb.node_count);
}
