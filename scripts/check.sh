#!/usr/bin/env bash
# One-stop hygiene gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
#
# Runs, in order, failing fast:
#   1. pbppm-lint            — the workspace's Rust-aware linter (panic +
#                              concurrency policy; see DESIGN.md §15)
#   2. cargo fmt --check     — no unformatted code
#   3. cargo clippy          — workspace + all targets, warnings are errors
#   4. cargo test -q         — the tier-1 suite
#   5. cargo test -p pbppm-audit — the structural-audit adversarial suite
#
# The perf-regression gate is separate (scripts/perf-gate.sh) because it
# needs a quiet machine and a release build.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== pbppm lint" >&2
cargo run -q -p pbppm-lint -- .

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test -q

echo "== cargo test -p pbppm-audit" >&2
cargo test -q -p pbppm-audit

echo "check.sh: all green" >&2
