#!/usr/bin/env bash
# One-stop hygiene gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
#
# Runs, in order, failing fast:
#   1. cargo fmt --check     — no unformatted code
#   2. cargo clippy          — workspace + all targets, warnings are errors
#   3. cargo test -q         — the tier-1 suite
#
# The perf-regression gate is separate (scripts/perf-gate.sh) because it
# needs a quiet machine and a release build.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test -q

echo "check.sh: all green" >&2
