#!/usr/bin/env bash
# Repo-specific lint rules that rustc/clippy do not enforce. Pure grep/awk —
# no network, no cargo — so it runs in under a second and anywhere.
#
#   1. Every crate root opts out of unsafe code with #![forbid(unsafe_code)].
#      Exceptions: pbppm-obs's lib.rs uses #![deny(unsafe_code)] so that its
#      alloc module can locally re-allow it for the one GlobalAlloc impl
#      (forbid cannot be overridden), and alloc.rs itself must carry
#      #![allow(unsafe_code)].
#   2. No .unwrap() / .expect( in non-test crates/core/src code, outside the
#      entries in scripts/lint-allowlist.txt. The model library must surface
#      errors as values; panics belong to tests and to the binaries' edges.
#   3. No lossy `as` integer casts in the snapshot codec's non-test code
#      (crates/core/src/snapshot.rs). Narrowing in the wire format is how
#      silent corruption is born; use try_from or the len_u64 helper.
#
# "Non-test" means everything above the first line-leading #[cfg(test)]:
# by convention every file in crates/core/src keeps its test module last.
#
# Usage: scripts/lint-rules.sh [--self-test]
# --self-test corrupts a scratch copy of the tree and asserts the gate
# notices, guarding the gate itself against pattern rot.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
complain() {
    echo "lint-rules: $1" >&2
    fail=1
}

# ---------------------------------------------------------------- rule 1
check_attr() {
    local file="$1" attr="$2"
    if ! grep -q "^#!\[$attr(unsafe_code)\]" "$file"; then
        complain "$file: missing #![$attr(unsafe_code)]"
    fi
}

for root in src/lib.rs crates/*/src/lib.rs crates/*/src/main.rs crates/bench/src/bin/*.rs; do
    [ -f "$root" ] || continue
    case "$root" in
        crates/obs/src/lib.rs) check_attr "$root" deny ;;
        *) check_attr "$root" forbid ;;
    esac
done
check_attr crates/obs/src/alloc.rs allow

# ---------------------------------------------------------------- rule 2
# Candidate lines: path:lineno:content, test modules stripped.
core_nontest() {
    local f
    for f in crates/core/src/*.rs; do
        awk -v F="$f" '/^#\[cfg\(test\)\]/{exit} {print F":"FNR":"$0}' "$f"
    done
}

unwraps=$(core_nontest | grep -F '.unwrap()' || true)
expects=$(core_nontest | grep -F '.expect(' || true)
panics=$(printf '%s\n%s\n' "$unwraps" "$expects" | sed '/^$/d' || true)

if [ -n "$panics" ]; then
    leftovers=$(printf '%s\n' "$panics" | awk -F'\t' '
        NR == FNR {
            if ($0 !~ /^#/ && NF >= 2) { n++; file[n] = $1; pat[n] = $2 }
            next
        }
        {
            split($0, parts, ":")
            for (i = 1; i <= n; i++)
                if (parts[1] == file[i] && index($0, pat[i]) > 0) next
            print
        }
    ' scripts/lint-allowlist.txt -)
    if [ -n "$leftovers" ]; then
        while IFS= read -r line; do
            complain "unwrap/expect outside the allowlist: $line"
        done <<<"$leftovers"
    fi
fi

# ---------------------------------------------------------------- rule 3
casts=$(awk '/^#\[cfg\(test\)\]/{exit} {print "crates/core/src/snapshot.rs:"FNR":"$0}' \
        crates/core/src/snapshot.rs \
    | grep -E ' as (u8|u16|u32|u64|u128|usize|i8|i16|i32|i64|isize)\b' || true)
if [ -n "$casts" ]; then
    while IFS= read -r line; do
        complain "lossy integer cast in the snapshot codec: $line"
    done <<<"$casts"
fi

# ---------------------------------------------------------------- self-test
if [ "${1:-}" = "--self-test" ]; then
    if [ "$fail" -ne 0 ]; then
        echo "lint-rules: cannot self-test, the tree already fails" >&2
        exit 1
    fi
    scratch=$(mktemp -d)
    trap 'rm -rf "$scratch"' EXIT
    cp -r scripts crates src "$scratch"/
    # Plant one violation of each rule and require the gate to trip.
    sed -i 's/^#!\[forbid(unsafe_code)\]//' "$scratch/crates/core/src/lib.rs"
    # Insert above the test module so the stripper cannot hide it.
    sed -i '1i fn _lint_canary() { let x: Option<u32> = None; x.unwrap(); }' \
        "$scratch/crates/core/src/interner.rs"
    sed -i '1i fn _cast_canary(n: usize) -> u32 { n as u32 }' \
        "$scratch/crates/core/src/snapshot.rs"
    if out=$(cd "$scratch" && bash scripts/lint-rules.sh 2>&1); then
        echo "lint-rules: SELF-TEST FAILED — planted violations were not caught" >&2
        exit 1
    fi
    for expected in "missing #!\[forbid" "unwrap/expect outside the allowlist" \
        "lossy integer cast"; do
        if ! grep -q "$expected" <<<"$out"; then
            echo "lint-rules: SELF-TEST FAILED — no complaint matching '$expected'" >&2
            exit 1
        fi
    done
    echo "lint-rules: self-test ok (planted violations were caught)"
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "lint-rules: ok"
