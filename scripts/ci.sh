#!/usr/bin/env bash
# The whole CI pipeline in one command:
#
#   1. scripts/lint-rules.sh — repo-specific grep lints, plus the gate's
#                              own self-test (planted violations must trip)
#   2. scripts/check.sh      — fmt --check, clippy -D warnings, tests
#   3. scripts/perf-gate.sh  — throughput must stay within 15% of baseline
#   4. snapshot smoke        — generate a tiny trace, `pbppm save` it, and
#                              answer a query from the snapshot with
#                              `pbppm load-predict` (exercises the binary
#                              codec end to end through the real binary)
#   5. audit smoke           — `pbppm audit` accepts the snapshot it just
#                              saved and rejects (nonzero exit) a copy with
#                              a flipped payload byte
#
# Usage: scripts/ci.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== ci: lint-rules.sh --self-test" >&2
scripts/lint-rules.sh --self-test

echo "== ci: check.sh" >&2
scripts/check.sh

echo "== ci: perf-gate.sh" >&2
scripts/perf-gate.sh

echo "== ci: snapshot save/load-predict smoke" >&2
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -q -p pbppm-cli
pbppm="$repo/target/release/pbppm"

"$pbppm" generate --preset tiny --out "$tmp/access.log" >/dev/null
"$pbppm" save "$tmp/access.log" --out "$tmp/model.pbss" --model pb >/dev/null
# Query a context the tiny preset always contains; any prediction output
# (or a clean empty "no prediction" answer) proves the snapshot loads.
"$pbppm" load-predict "$tmp/model.pbss" --context "/l0/p0.html" >"$tmp/preds.txt"
if [[ ! -s "$tmp/preds.txt" ]]; then
    echo "ci: load-predict produced no output" >&2
    exit 1
fi

echo "== ci: snapshot audit smoke" >&2
# The freshly saved model must pass the structural audit...
"$pbppm" audit "$tmp/model.pbss" >/dev/null
# ...and a corrupted copy must fail it with a nonzero exit. Flipping a byte
# in the middle of the payload breaks the checksum at minimum; either the
# decoder or the audit must refuse it.
python3 - "$tmp/model.pbss" "$tmp/corrupt.pbss" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], "rb").read())
data[len(data) // 2] ^= 0xFF
open(sys.argv[2], "wb").write(bytes(data))
EOF
if "$pbppm" audit "$tmp/corrupt.pbss" >/dev/null 2>&1; then
    echo "ci: audit accepted a corrupted snapshot" >&2
    exit 1
fi

echo "ci: all green" >&2
