#!/usr/bin/env bash
# The whole CI pipeline in one command:
#
#   1. scripts/check.sh      — fmt --check, clippy -D warnings, tests
#   2. scripts/perf-gate.sh  — throughput must stay within 15% of baseline
#   3. snapshot smoke        — generate a tiny trace, `pbppm save` it, and
#                              answer a query from the snapshot with
#                              `pbppm load-predict` (exercises the binary
#                              codec end to end through the real binary)
#
# Usage: scripts/ci.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== ci: check.sh" >&2
scripts/check.sh

echo "== ci: perf-gate.sh" >&2
scripts/perf-gate.sh

echo "== ci: snapshot save/load-predict smoke" >&2
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -q -p pbppm-cli
pbppm="$repo/target/release/pbppm"

"$pbppm" generate --preset tiny --out "$tmp/access.log" >/dev/null
"$pbppm" save "$tmp/access.log" --out "$tmp/model.pbss" --model pb >/dev/null
# Query a context the tiny preset always contains; any prediction output
# (or a clean empty "no prediction" answer) proves the snapshot loads.
"$pbppm" load-predict "$tmp/model.pbss" --context "/l0/p0.html" >"$tmp/preds.txt"
if [[ ! -s "$tmp/preds.txt" ]]; then
    echo "ci: load-predict produced no output" >&2
    exit 1
fi

echo "ci: all green" >&2
