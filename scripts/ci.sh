#!/usr/bin/env bash
# The whole CI pipeline in one command:
#
#   1. pbppm-lint            — the workspace linter's per-rule self-test
#                              (every planted corpus violation must trip),
#                              then the tree itself, timed: the full pass
#                              must finish in under two seconds
#   2. scripts/check.sh      — pbppm lint, fmt --check, clippy -D
#                              warnings, tests
#   3. scripts/perf-gate.sh  — throughput must stay within 15% of baseline
#   4. snapshot smoke        — generate a tiny trace, then for each tree
#                              model (pb, standard, lrs): `pbppm save`
#                              (finalize freezes the SoA/CSR arena and the
#                              v2 codec persists it), `pbppm audit` (cross-
#                              checks the persisted arena against a fresh
#                              recompile), and `pbppm load-predict` (serves
#                              a query from the recompiled arena) — the
#                              full freeze → save → audit → load-predict
#                              cycle through the real binary
#   5. audit smoke           — `pbppm audit` rejects (nonzero exit) a
#                              snapshot copy with a flipped payload byte
#   6. serve protocol smoke  — pipe train/predict/stats/metrics/trace/
#                              health/quit through `pbppm serve`, assert
#                              the one-`ok`/`err`-line-per-command
#                              discipline, then restart against the same
#                              dir and assert the greeting reports a
#                              recovered generation (warm start)
#   7. sharded serve smoke   — the same protocol through `pbppm serve
#                              --shards 4` with `@client` routing tokens,
#                              asserting the sharded greeting and the
#                              aggregated stats line
#   8. loadgen smoke         — a short fixed-seed open-loop run of the
#                              `loadgen` bench (4 shards, low rate) must
#                              complete with zero errors and zero
#                              rejected publishes
#   9. parallel ingest smoke — `pbppm train` on the same log at
#                              --threads 1 and --threads 4 must produce
#                              byte-identical bundles (the deterministic
#                              parallel-training contract through the
#                              real binary), then a short `ingest` bench
#                              run must report nonzero throughput in all
#                              three phases
#
# Usage: scripts/ci.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== ci: pbppm-lint --self-test" >&2
cargo build -q -p pbppm-lint
lint="$repo/target/debug/pbppm-lint"
"$lint" --self-test .
# The lint pass is cheap enough to run on every edit; keep it that way.
lint_start="$(date +%s%N)"
"$lint" .
lint_ns=$(( $(date +%s%N) - lint_start ))
if (( lint_ns > 2000000000 )); then
    echo "ci: pbppm-lint took $((lint_ns / 1000000)) ms (budget: 2000 ms)" >&2
    exit 1
fi

echo "== ci: check.sh" >&2
scripts/check.sh

echo "== ci: perf-gate.sh" >&2
scripts/perf-gate.sh

echo "== ci: snapshot save/load-predict smoke" >&2
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -q -p pbppm-cli
pbppm="$repo/target/release/pbppm"

# The CLI front-end must agree with the standalone binary: a clean tree
# and the machine-readable report shape.
"$pbppm" lint --json . | grep -q '"clean":true' || {
    echo "ci: pbppm lint --json did not report a clean tree" >&2
    exit 1
}

"$pbppm" generate --preset tiny --out "$tmp/access.log" >/dev/null
for model in pb standard lrs; do
    # `save` finalizes (which freezes the SoA/CSR arena) and persists it in
    # the v2 snapshot; `audit` recompiles the arena from the decoded tree
    # and cross-checks the persisted copy; `load-predict` answers from the
    # recompiled arena. Any prediction output (or a clean empty "no
    # prediction" answer) proves the cycle worked.
    "$pbppm" save "$tmp/access.log" --out "$tmp/model-$model.pbss" --model "$model" >/dev/null
    "$pbppm" audit "$tmp/model-$model.pbss" >/dev/null
    "$pbppm" load-predict "$tmp/model-$model.pbss" --context "/l0/p0.html" >"$tmp/preds-$model.txt"
    if [[ ! -s "$tmp/preds-$model.txt" ]]; then
        echo "ci: load-predict ($model) produced no output" >&2
        exit 1
    fi
done
# Keep the pb snapshot under the historical name for the corruption check.
cp "$tmp/model-pb.pbss" "$tmp/model.pbss"

echo "== ci: snapshot audit smoke" >&2
# A corrupted copy must fail the audit with a nonzero exit. Flipping a byte
# in the middle of the payload breaks the checksum at minimum; either the
# decoder or the audit must refuse it.
python3 - "$tmp/model.pbss" "$tmp/corrupt.pbss" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], "rb").read())
data[len(data) // 2] ^= 0xFF
open(sys.argv[2], "wb").write(bytes(data))
EOF
if "$pbppm" audit "$tmp/corrupt.pbss" >/dev/null 2>&1; then
    echo "ci: audit accepted a corrupted snapshot" >&2
    exit 1
fi

echo "== ci: serve protocol smoke" >&2
servedir="$tmp/serve"
serveout="$tmp/serve-out.txt"
printf '%s\n' \
    "train /a.html,/b.html,/c.html" \
    "train /a.html,/b.html,/d.html" \
    "predict /a.html,/b.html" \
    "stats" \
    "metrics --prom" \
    "trace 5" \
    "health" \
    "bogus-command" \
    "quit" \
    | "$pbppm" serve --dir "$servedir" --rebuild-every 1 >"$serveout"
# Greeting first, then exactly one ok/err status line per command (the
# metrics/trace/predict payload lines that follow an "ok N" header never
# start with ok/err — metric names are pbppm_*, trace records are #N …).
if ! head -n1 "$serveout" | grep -q '^ready recovered=fresh '; then
    echo "ci: serve did not greet with a fresh session" >&2
    exit 1
fi
ok_lines="$(grep -c '^ok' "$serveout")"
err_lines="$(grep -c '^err' "$serveout")"
if [[ "$ok_lines" -ne 8 || "$err_lines" -ne 1 ]]; then
    echo "ci: serve ok/err discipline broken: $ok_lines ok + $err_lines err lines for 9 commands" >&2
    exit 1
fi
grep -q '^pbppm_serve_requests{cmd="train"} 2$' "$serveout" || {
    echo "ci: serve metrics --prom did not expose the train counter" >&2
    exit 1
}
grep -q 'trained 3 url(s)' "$serveout" || {
    echo "ci: serve train did not acknowledge the session" >&2
    exit 1
}
# Warm restart against the same dir: the quit checkpoint must be
# recovered, and the greeting must say so.
printf '%s\n' "stats" "quit" | "$pbppm" serve --dir "$servedir" >"$serveout"
if ! head -n1 "$serveout" | grep -Eq '^ready recovered=(current|previous) '; then
    echo "ci: serve warm restart did not report a recovered generation" >&2
    exit 1
fi
grep -Eq '^ok urls .* recovered (current|previous),' "$serveout" || {
    echo "ci: serve stats did not report the recovered generation" >&2
    exit 1
}

echo "== ci: sharded serve smoke" >&2
sharddir="$tmp/serve-sharded"
shardout="$tmp/serve-sharded-out.txt"
printf '%s\n' \
    "train @alice /a.html,/b.html,/c.html" \
    "train @bob /a.html,/b.html,/d.html" \
    "predict @alice /a.html,/b.html" \
    "stats" \
    "health" \
    "quit" \
    | "$pbppm" serve --dir "$sharddir" --shards 4 --rebuild-every 1 >"$shardout"
if ! head -n1 "$shardout" | grep -q '^ready recovered=fresh shards=4 '; then
    echo "ci: sharded serve did not greet with its shard count" >&2
    exit 1
fi
grep -q '^ok shards 4, ' "$shardout" || {
    echo "ci: sharded stats did not aggregate across shards" >&2
    exit 1
}
if grep -q '^err' "$shardout"; then
    echo "ci: sharded serve smoke produced err responses" >&2
    exit 1
fi

echo "== ci: loadgen open-loop smoke" >&2
# The loadgen binary always rewrites the committed BENCH_loadgen.json
# baseline at the repo root; the smoke runs a non-baseline shape, so the
# committed file is saved and restored around it.
cp "$repo/BENCH_loadgen.json" "$tmp/BENCH_loadgen.committed"
PBPPM_RESULTS="$tmp/results" \
    cargo run --release -q -p pbppm-bench --bin loadgen -- \
    --rate 300 --seconds 1 --shards 4 --seed 7 >"$tmp/loadgen-out.txt"
mv "$tmp/BENCH_loadgen.committed" "$repo/BENCH_loadgen.json"
python3 - "$tmp/results/loadgen.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["shards"] == 4, f"expected 4 shards, got {r['shards']}"
assert r["requests"] > 0, "loadgen completed no requests"
assert r["errors"] == 0, f"{r['errors']} err responses under load"
assert r["publish_rejected"] == 0, f"{r['publish_rejected']} rejected publishes"
assert all(c["p99_ns"] > 0 for c in r["commands"]), "empty latency percentiles"
EOF

echo "== ci: parallel ingest smoke" >&2
# Parallel training is bit-identical to sequential at any worker count;
# prove it through the real binary by diffing whole trained bundles.
"$pbppm" train "$tmp/access.log" --out "$tmp/model-t1.json" --threads 1 >/dev/null
"$pbppm" train "$tmp/access.log" --out "$tmp/model-t4.json" --threads 4 >/dev/null
cmp -s "$tmp/model-t1.json" "$tmp/model-t4.json" || {
    echo "ci: parallel training (--threads 4) diverged from --threads 1" >&2
    exit 1
}
# Short ingest bench run: like loadgen, the binary rewrites the committed
# BENCH_ingest.json at the repo root, so save and restore it.
cp "$repo/BENCH_ingest.json" "$tmp/BENCH_ingest.committed"
PBPPM_RESULTS="$tmp/results" \
    cargo run --release -q -p pbppm-bench --bin ingest -- --days 1 >"$tmp/ingest-out.txt"
mv "$tmp/BENCH_ingest.committed" "$repo/BENCH_ingest.json"
python3 - "$tmp/results/ingest.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["lines"] > 0, "ingest bench parsed no lines"
assert r["sessions"] > 0, "ingest bench trained no sessions"
assert len(r["phases"]) == 3, f"expected 3 phases, got {len(r['phases'])}"
assert all(p["parallel_secs"] > 0 for p in r["phases"]), "empty phase timings"
assert r["parse_lines_per_sec"] > 0, "zero parse throughput"
EOF

echo "ci: all green" >&2
