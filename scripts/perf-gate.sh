#!/usr/bin/env bash
# Perf-regression gate: re-measures prediction and simulation throughput
# and fails (exit 1) if any gated metric, per model, regressed:
#
#   * frozen_ns_per_click        — single-click predict latency on the
#                                  frozen SoA/CSR arena serving path,
#                                  >15% slower than baseline fails
#   * batched_clicks_per_sec     — batched predict throughput, same 15%
#   * parallel_requests_per_sec  — end-to-end eval throughput, same 15%
#   * heap_bytes_per_node_frozen — frozen arena density; growing >15%
#                                  past baseline fails even if speed holds
#   * fast_path_speedup          — hard floor, baseline-independent: the
#                                  serving path must stay >= 1.0x the
#                                  reference scan on every model
#   * serve predict_p99_ns       — p99 per-request latency through the
#                                  `pbppm serve` line protocol, same 15%
#                                  (skipped against baselines predating
#                                  the serve section)
#
# Usage: scripts/perf-gate.sh [baseline.json]
#
# The baseline defaults to BENCH_throughput.json at the repo root. To
# refresh it after an intentional perf change, run the throughput binary
# without this script and commit the rewritten file:
#
#   cargo run --release -p pbppm-bench --bin throughput
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${1:-$repo/BENCH_throughput.json}"

if [[ ! -f "$baseline" ]]; then
    echo "perf-gate: no baseline at $baseline" >&2
    echo "perf-gate: run 'cargo run --release -p pbppm-bench --bin throughput' once and commit BENCH_throughput.json" >&2
    exit 2
fi

# The fresh run overwrites BENCH_throughput.json at the repo root, so the
# comparison reads a copy of the committed baseline. The throughput binary
# itself performs the comparison and sets the exit code.
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
cp "$baseline" "$tmp"

status=0
PBPPM_PERF_BASELINE="$tmp" cargo run --release -p pbppm-bench --bin throughput || status=$?

# On a regression (exit 1), render the run's span-level telemetry so the
# failure names where the time went, not just which metric moved. The
# report is written before the gate runs, so it exists even on failure.
metrics="${PBPPM_RESULTS:-$repo/results}/run_metrics_throughput.json"
if [[ "$status" -eq 1 && -f "$metrics" ]]; then
    echo >&2
    echo "perf-gate: span-level breakdown of the failing run ($metrics):" >&2
    cargo run -q --release -p pbppm-cli --bin pbppm -- stats "$metrics" >&2 || true
fi

exit "$status"
