#!/usr/bin/env bash
# Perf-regression gate: re-measures prediction and simulation throughput
# and fails (exit 1) if any gated metric, per model, regressed:
#
#   * frozen_ns_per_click        — single-click predict latency on the
#                                  frozen SoA/CSR arena serving path,
#                                  >15% slower than baseline fails
#   * batched_clicks_per_sec     — batched predict throughput, same 15%
#   * parallel_requests_per_sec  — end-to-end eval throughput, same 15%
#   * heap_bytes_per_node_frozen — frozen arena density; growing >15%
#                                  past baseline fails even if speed holds
#   * fast_path_speedup          — hard floor, baseline-independent: the
#                                  serving path must stay >= 1.0x the
#                                  reference scan on every model
#   * serve predict_p99_ns       — p99 per-request latency through the
#                                  `pbppm serve` line protocol, same 15%
#                                  (skipped against baselines predating
#                                  the serve section)
#
# followed by the open-loop leg: the `loadgen` binary replays a Poisson
# arrival process against the sharded serving core and gates each
# command's p99 (scheduled arrival -> completion, so queueing delay
# counts) against BENCH_loadgen.json, with a 100% tolerance sized for
# open-loop tail noise.
#
# followed by the ingest leg: the `ingest` binary measures the build
# pipeline (CLF log -> parsed trace -> sessions -> frozen PB-PPM model)
# sequentially and through the chunked parallel path, and gates against
# BENCH_ingest.json:
#
#   * parse/train/end_to_end wall — each phase, both paths, >100% slower
#                                   than baseline fails (tolerance sized
#                                   like loadgen's: short wall times on a
#                                   busy box jitter hard)
#   * end-to-end speedup          — baseline-independent floor: >= 2x on
#                                   hosts with >= 4 cores (skipped on
#                                   narrower machines, where there is no
#                                   parallelism to win)
#   * parse peak heap             — baseline-independent: the chunked
#                                   parse may peak at most 1.25x the
#                                   buffer-everything sequential parse
#
# Usage: scripts/perf-gate.sh [baseline.json [loadgen-baseline.json [ingest-baseline.json]]]
#
# Baselines default to BENCH_throughput.json, BENCH_loadgen.json, and
# BENCH_ingest.json at the repo root. To refresh after an intentional
# perf change, run the binaries without this script and commit the
# rewritten files:
#
#   cargo run --release -p pbppm-bench --bin throughput
#   cargo run --release -p pbppm-bench --bin loadgen
#   cargo run --release -p pbppm-bench --bin ingest
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${1:-$repo/BENCH_throughput.json}"
loadgen_baseline="${2:-$repo/BENCH_loadgen.json}"
ingest_baseline="${3:-$repo/BENCH_ingest.json}"

if [[ ! -f "$baseline" ]]; then
    echo "perf-gate: no baseline at $baseline" >&2
    echo "perf-gate: run 'cargo run --release -p pbppm-bench --bin throughput' once and commit BENCH_throughput.json" >&2
    exit 2
fi
if [[ ! -f "$loadgen_baseline" ]]; then
    echo "perf-gate: no loadgen baseline at $loadgen_baseline" >&2
    echo "perf-gate: run 'cargo run --release -p pbppm-bench --bin loadgen' once and commit BENCH_loadgen.json" >&2
    exit 2
fi
if [[ ! -f "$ingest_baseline" ]]; then
    echo "perf-gate: no ingest baseline at $ingest_baseline" >&2
    echo "perf-gate: run 'cargo run --release -p pbppm-bench --bin ingest' once and commit BENCH_ingest.json" >&2
    exit 2
fi

# The fresh runs overwrite BENCH_throughput.json / BENCH_loadgen.json /
# BENCH_ingest.json at the repo root, so the comparisons read copies of
# the committed baselines. The binaries themselves perform the
# comparison and set the exit code.
tmp="$(mktemp)"
lg_tmp="$(mktemp)"
in_tmp="$(mktemp)"
trap 'rm -f "$tmp" "$lg_tmp" "$in_tmp"' EXIT
cp "$baseline" "$tmp"
cp "$loadgen_baseline" "$lg_tmp"
cp "$ingest_baseline" "$in_tmp"

status=0
PBPPM_PERF_BASELINE="$tmp" cargo run --release -p pbppm-bench --bin throughput || status=$?

# On a regression (exit 1), render the run's span-level telemetry so the
# failure names where the time went, not just which metric moved. The
# report is written before the gate runs, so it exists even on failure.
metrics="${PBPPM_RESULTS:-$repo/results}/run_metrics_throughput.json"
if [[ "$status" -eq 1 && -f "$metrics" ]]; then
    echo >&2
    echo "perf-gate: span-level breakdown of the failing run ($metrics):" >&2
    cargo run -q --release -p pbppm-cli --bin pbppm -- stats "$metrics" >&2 || true
fi

echo "perf-gate: open-loop loadgen leg" >&2
lg_status=0
PBPPM_PERF_BASELINE_LOADGEN="$lg_tmp" cargo run --release -p pbppm-bench --bin loadgen || lg_status=$?
if [[ "$status" -eq 0 ]]; then
    status="$lg_status"
fi

echo "perf-gate: build-pipeline ingest leg" >&2
in_status=0
PBPPM_PERF_BASELINE_INGEST="$in_tmp" cargo run --release -p pbppm-bench --bin ingest || in_status=$?
if [[ "$status" -eq 0 ]]; then
    status="$in_status"
fi

exit "$status"
