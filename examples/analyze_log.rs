//! Analyze a web-server log in Common Log Format: parse it, sessionize it,
//! classify clients, and report the popularity regularities the paper's
//! model is built on.
//!
//! With no argument the example first *materializes* a synthetic NASA-like
//! trace as a real CLF log file (so the whole path — format, parse,
//! analyze — is exercised), then analyzes it. Point it at a real log file
//! (e.g. the actual NASA-KSC July 1995 log) to analyze that instead:
//!
//! ```sh
//! cargo run --release --example analyze_log               # self-generated
//! cargo run --release --example analyze_log -- access.log # a real log
//! ```

use pbppm::core::PopularityTable;
use pbppm::trace::clf::{format_clf_line, ClfRecord};
use pbppm::trace::combined::trace_from_log;
use pbppm::trace::{
    classify_clients, sessionize_trace, ClassifyConfig, ClientClass, SessionStats, WorkloadConfig,
};
use std::io::{BufRead, BufReader, Write};

fn main() -> std::io::Result<()> {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            // Materialize a synthetic trace as a genuine CLF file.
            let trace = WorkloadConfig::tiny(42).generate();
            let path = std::env::temp_dir().join("pbppm-synthetic.log");
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
            for r in &trace.requests {
                let rec = ClfRecord {
                    host: trace
                        .clients
                        .resolve(pbppm::core::UrlId(r.client.0))
                        .map_or_else(|| format!("host{}", r.client.0), |s| s.to_owned()),
                    time: r.time as i64 + 804_571_200, // July 1 1995, 04:00 UTC
                    method: "GET".to_owned(),
                    path: trace.urls.resolve(r.url).unwrap_or("/").to_owned(),
                    status: r.status,
                    size: r.size,
                };
                writeln!(f, "{}", format_clf_line(&rec))?;
            }
            f.flush()?;
            println!("materialized synthetic log at {}", path.display());
            path.to_string_lossy().into_owned()
        }
    };

    let file = std::fs::File::open(&path)?;
    let lines = BufReader::new(file).lines().map_while(Result::ok);
    let (trace, ingest) = trace_from_log(&path, lines);
    println!(
        "parsed {} ({:?}): {} requests accepted, {} filtered, {} malformed",
        path, ingest.format, ingest.stats.accepted, ingest.stats.filtered, ingest.stats.malformed
    );
    println!(
        "{} distinct URLs, {} clients, {} day(s), {} MB transferred",
        trace.distinct_urls(),
        trace.clients.len(),
        trace.days(),
        trace.total_bytes() / 1_000_000
    );

    // Sessions (§2.2).
    let sessions = sessionize_trace(&trace);
    let st = SessionStats::of(&sessions);
    println!(
        "\n{} access sessions, mean length {:.2} views, max {}, {:.1}% with <= 9 views",
        st.count,
        st.mean_len,
        st.max_len,
        100.0 * st.frac_len_le_9
    );

    // Popularity (§3.1).
    let mut counts = PopularityTable::builder();
    for s in &sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let pop = counts.build();
    let hist = pop.grade_histogram();
    println!(
        "popularity grades: {} G3 / {} G2 / {} G1 / {} G0",
        hist[3], hist[2], hist[1], hist[0]
    );

    // Regularity 1: most sessions start from popular URLs, although most
    // URLs are not popular.
    let popular_starts = sessions
        .iter()
        .filter(|s| pop.is_popular(s.views[0].url))
        .count();
    println!(
        "Regularity 1: {:.1}% of sessions start at a popular URL; only {:.1}% of URLs are popular",
        100.0 * popular_starts as f64 / sessions.len().max(1) as f64,
        100.0 * (hist[3] + hist[2]) as f64 / pop.distinct_urls().max(1) as f64,
    );

    // Regularity 2: long sessions are headed by popular URLs.
    let long: Vec<_> = sessions.iter().filter(|s| s.len() >= 6).collect();
    let long_popular = long
        .iter()
        .filter(|s| pop.is_popular(s.views[0].url))
        .count();
    if !long.is_empty() {
        println!(
            "Regularity 2: {:.1}% of long (>= 6 view) sessions are headed by popular URLs",
            100.0 * long_popular as f64 / long.len() as f64
        );
    }

    // Client classification (§2.2).
    let classes = classify_clients(&trace.requests, &ClassifyConfig::default());
    let proxies = classes.iter().filter(|&&c| c == ClientClass::Proxy).count();
    println!(
        "client classification: {} proxies, {} browsers",
        proxies,
        classes.len() - proxies
    );
    Ok(())
}
