//! Persist a trained model across server restarts: train PB-PPM, snapshot
//! it to JSON, reload it, and verify the reloaded model predicts
//! identically. (Snapshots are plain `serde` types — any format works;
//! JSON keeps the example dependency-free.)
//!
//! ```sh
//! cargo run --release --example persist_model
//! ```

use pbppm::core::{PbConfig, PbPpm, PopularityTable, Prediction, Predictor, PruneConfig};
use pbppm::trace::{sessionize_trace, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on a synthetic workload.
    let trace = WorkloadConfig::tiny(3).generate();
    let sessions = sessionize_trace(&trace);
    let mut counts = PopularityTable::builder();
    for s in &sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let mut model = PbPpm::new(
        counts.build(),
        PbConfig {
            prune: PruneConfig::aggressive(),
            ..PbConfig::default()
        },
    );
    for s in &sessions {
        model.train_session(&s.urls());
    }
    model.finalize();
    println!(
        "trained: {} nodes from {} sessions",
        model.node_count(),
        sessions.len()
    );

    // Snapshot to disk.
    let path = std::env::temp_dir().join("pbppm-model.json");
    let json = serde_json::to_string(&model.to_snapshot())?;
    std::fs::write(&path, &json)?;
    println!("saved {} ({} KB)", path.display(), json.len() / 1024);

    // ... server restarts ...

    // Reload and verify.
    let loaded: pbppm::core::pb::PbSnapshot =
        serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    let mut restored = PbPpm::from_snapshot(&loaded)?;
    assert_eq!(restored.node_count(), model.node_count());

    let mut fresh: Vec<Prediction> = Vec::new();
    let mut reloaded: Vec<Prediction> = Vec::new();
    let mut checked = 0;
    for s in sessions.iter().take(200) {
        let urls = s.urls();
        for i in 0..urls.len() {
            model.predict(&urls[..=i], &mut fresh);
            restored.predict(&urls[..=i], &mut reloaded);
            assert_eq!(fresh, reloaded, "predictions diverged after reload");
            checked += 1;
        }
    }
    println!("restored model matches on {checked} contexts — safe to serve");
    Ok(())
}
