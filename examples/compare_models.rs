//! Compare the three prediction models (plus the first-order Markov
//! baseline) on one synthetic workload, reporting the paper's four metrics.
//!
//! ```sh
//! cargo run --release --example compare_models            # NASA-like
//! cargo run --release --example compare_models -- ucb     # UCB-like
//! cargo run --release --example compare_models -- tiny    # fast smoke run
//! ```

use pbppm::sim::{run_experiment, ExperimentConfig, ModelSpec};
use pbppm::trace::WorkloadConfig;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "nasa".to_owned());
    let (workload, train_days) = match which.as_str() {
        "ucb" => (WorkloadConfig::ucb_like(1), 4),
        "tiny" => (WorkloadConfig::tiny(1), 2),
        _ => (WorkloadConfig::nasa_like(1), 5),
    };
    println!("generating the {} trace ...", workload.name);
    let trace = workload.generate();
    println!(
        "{} requests, {} distinct URLs, {} days; training on {} day(s), evaluating the next\n",
        trace.requests.len(),
        trace.distinct_urls(),
        trace.days(),
        train_days,
    );

    println!(
        "{:<10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "model", "nodes", "hit", "latency-", "traffic+", "pop-frac", "path-util"
    );
    for spec in [
        ModelSpec::Standard { max_height: None },
        ModelSpec::Standard {
            max_height: Some(3),
        },
        ModelSpec::Lrs,
        ModelSpec::pb_paper(true),
        ModelSpec::Order1,
    ] {
        let cfg = ExperimentConfig::paper_default(spec, train_days);
        let r = run_experiment(&trace, &cfg);
        println!(
            "{:<10} {:>9} {:>7.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9.1}%",
            r.label,
            r.node_count,
            100.0 * r.hit_ratio(),
            100.0 * r.latency_reduction(),
            100.0 * r.traffic_increment(),
            100.0 * r.popular_prefetch_fraction(),
            100.0 * r.path_utilization(),
        );
    }
    let base = run_experiment(
        &trace,
        &ExperimentConfig::paper_default(ModelSpec::NoPrefetch, train_days),
    );
    println!(
        "{:<10} {:>9} {:>7.1}%  (caching only)",
        "baseline",
        0,
        100.0 * base.hit_ratio()
    );
}
