//! Drive the complete server-side prefetching pipeline by hand — the same
//! steps `pbppm::sim::run_experiment` performs, spelled out with the public
//! API so each stage is visible: sessionize, grade popularity, train,
//! prune, then serve a day of requests with prefetching.
//!
//! ```sh
//! cargo run --release --example server_prefetch
//! ```

use pbppm::core::{PbConfig, PopularityTable, Predictor, PruneConfig};
use pbppm::sim::{ExperimentConfig, LruCache, ModelSpec, PrefetchServer};
use pbppm::trace::{sessionize, DocCatalog, SessionizerConfig, WorkloadConfig};

fn main() {
    // --- the raw material: a NASA-like multi-day server log ---------------
    let trace = WorkloadConfig::nasa_like(1).generate();
    let train_days = 5;

    // --- §2.2 preprocessing: sessions and the document catalog ------------
    let sess_cfg = SessionizerConfig::default();
    let train_sessions = sessionize(trace.first_days(train_days), &sess_cfg);
    let eval_sessions = sessionize(trace.day_span(train_days, train_days + 1), &sess_cfg);
    let mut catalog = DocCatalog::from_sessions(&train_sessions);
    catalog.observe_sessions(&eval_sessions);
    println!(
        "training: {} sessions over {train_days} days; evaluating {} sessions",
        train_sessions.len(),
        eval_sessions.len()
    );

    // --- two-pass training: popularity first, then the tree ---------------
    let mut counts = PopularityTable::builder();
    for s in &train_sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let popularity = counts.build();
    let hist = popularity.grade_histogram();
    println!(
        "popularity grades: {} G3, {} G2, {} G1, {} G0 (of {} URLs)",
        hist[3],
        hist[2],
        hist[1],
        hist[0],
        popularity.distinct_urls()
    );

    let mut model = pbppm::core::PbPpm::new(
        popularity.clone(),
        PbConfig {
            prune: PruneConfig::aggressive(),
            ..PbConfig::default()
        },
    );
    for s in &train_sessions {
        model.train_session(&s.urls());
    }
    model.finalize();
    let report = model.prune_report().unwrap();
    println!(
        "model: {} nodes after space optimization (pruned {} of {})",
        model.node_count(),
        report.removed(),
        report.nodes_before
    );

    // --- serve the evaluation day ------------------------------------------
    let policy = pbppm::sim::PrefetchPolicy::paper_default_for(&ModelSpec::pb_paper(true));
    let mut server = PrefetchServer::new(Box::new(model), policy);
    let cfg = ExperimentConfig::paper_default(ModelSpec::pb_paper(true), train_days);

    let mut cache = LruCache::new(cfg.browser_cache_bytes); // one shared toy cache
    let (mut hits, mut prefetch_hits, mut requests) = (0u64, 0u64, 0u64);
    let mut pushed = 0u64;
    let mut push = Vec::new();
    let mut ctx = Vec::new();
    for s in &eval_sessions {
        ctx.clear();
        for v in &s.views {
            if ctx.len() == cfg.context_cap {
                ctx.remove(0);
            }
            ctx.push(v.url);
            requests += 1;
            match cache.demand(v.url) {
                pbppm::sim::Lookup::Hit => hits += 1,
                pbppm::sim::Lookup::PrefetchHit => {
                    hits += 1;
                    prefetch_hits += 1;
                }
                pbppm::sim::Lookup::Miss => {
                    cache.insert(v.url, u64::from(catalog.size(v.url)).max(1), false);
                    server.decide(&ctx, &catalog, |u| cache.contains(u), &mut push);
                    for &(purl, psize) in &push {
                        pushed += 1;
                        cache.insert(purl, psize, true);
                    }
                }
            }
        }
    }
    println!(
        "\nday {}: {} requests, {} hits ({:.1}%), {} of them on prefetched documents; {} documents pushed",
        train_days + 1,
        requests,
        hits,
        100.0 * hits as f64 / requests as f64,
        prefetch_hits,
        pushed
    );
    println!(
        "model stats after serving: path utilization {:.1}%",
        100.0 * server.model().stats().path_utilization()
    );
}
