//! The §5 deployment: prefetching between a web server and a shared proxy,
//! sweeping the number of clients behind the proxy.
//!
//! ```sh
//! cargo run --release --example proxy_prefetch
//! ```

use pbppm::sim::{run_proxy_experiment, ExperimentConfig, ModelSpec, ProxyExperimentConfig};
use pbppm::trace::WorkloadConfig;

fn main() {
    let trace = WorkloadConfig::nasa_like(1).generate();
    println!(
        "trace: {} requests over {} days\n",
        trace.requests.len(),
        trace.days()
    );
    println!(
        "{:>8} {:>10} {:>13} {:>11} {:>15} {:>10}",
        "clients", "requests", "browser-hits", "proxy-hits", "prefetch-hits", "hit-ratio"
    );
    for clients in [1usize, 4, 16, 32] {
        let mut base = ExperimentConfig::paper_default(ModelSpec::pb_paper(true), 5);
        base.eval_days = 2;
        let cfg = ProxyExperimentConfig {
            base,
            clients_per_proxy: clients,
            selection_seed: 7,
            min_client_views: 20,
            proxy_groups: 2,
        };
        let r = run_proxy_experiment(&trace, &cfg);
        println!(
            "{:>8} {:>10} {:>13} {:>11} {:>15} {:>9.1}%",
            r.clients,
            r.requests,
            r.browser_hits,
            r.proxy_hits,
            r.proxy_prefetch_hits,
            100.0 * r.hit_ratio()
        );
    }
    println!("\nhits decompose into the paper's three sources; the shared proxy");
    println!("cache aggregates locality, so the total hit ratio climbs with the");
    println!("number of clients while per-request traffic overhead falls.");
}
