//! Quickstart: build a popularity-based PPM model from a handful of access
//! sessions and ask it what to prefetch.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pbppm::core::render::render_tree;
use pbppm::core::{Interner, PbConfig, PbPpm, PopularityTable, Predictor};

fn main() {
    // 1. Intern the URLs of a small site.
    let mut urls = Interner::new();
    let home = urls.intern("/index.html");
    let news = urls.intern("/news.html");
    let launch = urls.intern("/missions/launch.html");
    let gallery = urls.intern("/gallery/photo-17.html");

    // 2. First training pass: count accesses to grade URL popularity.
    //    (In a real deployment both passes run over the same server log;
    //    see `examples/server_prefetch.rs` for the full pipeline.)
    let sessions: Vec<Vec<_>> = vec![
        vec![home, news, launch, home],
        vec![home, news, launch],
        vec![home, news],
        vec![home, news, launch, gallery, home],
        vec![home, launch],
        vec![news, launch],
    ];
    let mut counts = PopularityTable::builder();
    for s in &sessions {
        for &u in s {
            counts.record(u);
        }
    }
    let popularity = counts.build();
    for &(name, url) in &[
        ("home", home),
        ("news", news),
        ("launch", launch),
        ("gallery", gallery),
    ] {
        println!(
            "{name:8} grade {:?}  relative popularity {:.3}",
            popularity.grade(url),
            popularity.relative_popularity(url)
        );
    }

    // 3. Second pass: build the popularity-based prediction tree.
    let mut model = PbPpm::new(popularity, PbConfig::default());
    for s in &sessions {
        model.train_session(s);
    }
    model.finalize();

    println!(
        "\nprediction tree ({} nodes, `~>` marks special links):",
        model.node_count()
    );
    println!("{}", render_tree(model.tree(), Some(&urls)));

    // 4. A user just clicked /index.html then /news.html: what should the
    //    server push alongside the response?
    let mut predictions = Vec::new();
    model.predict(&[home, news], &mut predictions);
    println!("after /index.html -> /news.html the model suggests:");
    for p in &predictions {
        println!("  {:<28} p = {:.2}", urls.resolve(p.url).unwrap(), p.prob);
    }
    assert_eq!(predictions[0].url, launch);
}
