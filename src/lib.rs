//! # pbppm — popularity-based PPM web prefetching
//!
//! Facade crate for the reproduction of *"Popularity-Based PPM: An Effective
//! Web Prefetching Technique for High Accuracy and Low Storage"* (Xin Chen
//! and Xiaodong Zhang, ICPP 2002).
//!
//! It re-exports the three workspace crates:
//!
//! * [`core`] (`pbppm-core`) — the prediction models: standard PPM, LRS-PPM,
//!   popularity-based PPM, and a first-order Markov baseline.
//! * [`trace`] (`pbppm-trace`) — the trace substrate: Common Log Format
//!   parsing, sessionization, and synthetic NASA-like / UCB-like workloads.
//! * [`sim`] (`pbppm-sim`) — the trace-driven simulator: LRU caches, latency
//!   model, prefetching server, browser/proxy deployments, and metrics.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `pbppm-bench`
//! crate for the binaries that regenerate every table and figure of the
//! paper.

#![forbid(unsafe_code)]

pub use pbppm_core as core;
pub use pbppm_sim as sim;
pub use pbppm_trace as trace;
