//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s *value-based* `Serialize`/`Deserialize`
//! traits (see `vendor/serde`). The real serde_derive targets serde's
//! streaming data model; the vendored serde instead converts through a
//! JSON-like [`serde::Value`] tree, which is all this workspace needs.
//!
//! Written against raw `proc_macro` (no syn/quote — the build environment
//! is fully offline). Supports exactly the shapes this workspace derives:
//!
//! * structs with named fields,
//! * tuple structs (newtype and multi-field),
//! * unit structs,
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally-tagged representation, like real serde's default).
//!
//! Not supported (and detected with a compile error): generic types and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`, covering doc comments too) and visibility
/// (`pub`, `pub(...)`) from the front of a token cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Advances past one field/variant body: everything up to and including the
/// next comma at angle-bracket depth 0. Delimited groups are atomic tokens,
/// so only `<`/`>` need explicit depth tracking.
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Counts top-level (angle-depth-0) comma-separated items in a group body.
fn count_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        n += 1;
        i = skip_to_comma(tokens, i);
    }
    n
}

/// Parses the names of named fields from the body of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            Some(t) => return Err(format!("unexpected token {t} in field list")),
        }
        i += 1; // field name
        i = skip_to_comma(tokens, i); // `: Type,`
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("unexpected token {t} in enum body")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Named(parse_named_fields(&body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_items(&body))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        i = skip_to_comma(tokens, i);
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("expected struct/enum, found {t:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("expected type name, found {t:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_items(&body),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            t => Err(format!("unexpected struct body {t:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(&body)?,
                })
            }
            t => Err(format!("unexpected enum body {t:?}")),
        },
        other => Err(format!("expected struct or enum, found `{other}`")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } if arity == 1 => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Array(vec![{}]) }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::object_field(obj, {f:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", v))?;\n\
                         Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } if arity == 1 => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                         if items.len() != {arity} {{ return Err(::serde::DeError::new(\"tuple struct arity mismatch\")); }}\n\
                         Ok(Self({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ Ok(Self) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", inner))?;\n\
                                     if items.len() != {n} {{ return Err(::serde::DeError::new(\"tuple variant arity mismatch\")); }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::object_field(obj, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", inner))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{\n{unit_arms}\n_ => {{}} }}\n\
                         }}\n\
                         if let Some(obj) = v.as_object() {{\n\
                             if obj.len() == 1 {{\n\
                                 let (tag, inner) = (&obj[0].0, &obj[0].1);\n\
                                 match tag.as_str() {{\n{tagged_arms}\n_ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::new(concat!(\"no variant of \", stringify!({name}), \" matched\")))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
