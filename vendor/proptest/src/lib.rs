//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] /
//! [`prop_assert!`] macros, [`strategy::Strategy`] with `prop_map`/`boxed`,
//! integer/float range strategies, tuple strategies, [`collection::vec`],
//! [`prop_oneof!`] unions, and regex-subset string strategies
//! (`"[a-z]{1,20}"`-style patterns).
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test name (fully deterministic, overridable via `PROPTEST_SEED`),
//! and failing cases are reported but **not shrunk**.

pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The input was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded with `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test path, mixed with `PROPTEST_SEED` if set: every
    /// test gets its own deterministic stream.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        h ^ extra
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (see [`prop_oneof!`]).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    // Bias towards the boundaries now and then: edge cases
                    // are where properties break.
                    match rng.below(16) {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => ((self.start as i128) + rng.below(span) as i128) as $t,
                    }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    match rng.below(16) {
                        0 => lo,
                        1 => hi,
                        _ => ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t,
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String patterns are strategies: a regex subset (literals, `.`,
    /// `[...]` classes with ranges and `&&[^...]` subtraction, `*`/`+`/
    /// `{m,n}` quantifiers) generating matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// The inclusive (min, max) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `"pattern"` strategies.

    use crate::test_runner::TestRng;

    /// Upper repetition bound for open quantifiers (`*`, `+`).
    const OPEN_REP_MAX: u32 = 32;

    #[derive(Debug)]
    enum Atom {
        Literal(char),
        /// `.` — any character (drawn from a fuzz-friendly pool).
        Any,
        /// `[...]`: allowed chars minus excluded chars.
        Class {
            allowed: Vec<char>,
            negated: bool,
        },
    }

    #[derive(Debug)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// Generates a string matching the supported regex subset of `pattern`.
    ///
    /// Panics on unsupported syntax so a bad pattern fails loudly at test
    /// time instead of silently generating garbage.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let span = piece.max - piece.min + 1;
            let reps = piece.min + rng.below(u64::from(span)) as u32;
            for _ in 0..reps {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => {
                // Mostly printable ASCII, occasionally exotic: controls,
                // non-ASCII, and quote/backslash to poke parser edges.
                match rng.below(16) {
                    0 => ['\n', '\t', '\r', '\u{0}', 'é', '\u{30c6}', '"', '\\', '[', ']']
                        [rng.below(10) as usize],
                    _ => char::from(b' ' + rng.below(95) as u8),
                }
            }
            Atom::Class { allowed, negated } => {
                if *negated {
                    // Printable ASCII not in the set.
                    loop {
                        let c = char::from(b' ' + rng.below(95) as u8);
                        if !allowed.contains(&c) {
                            return c;
                        }
                    }
                } else {
                    assert!(!allowed.is_empty(), "empty character class");
                    allowed[rng.below(allowed.len() as u64) as usize]
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let (atom, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    atom
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 1;
                    Atom::Literal(unescape(c))
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Parses `[...]` starting just past the `[`; returns the atom and the
    /// index just past the closing `]`. Supports ranges (`a-z`), escapes,
    /// leading `^` negation, and `&&[^...]` subtraction.
    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
        let negated = chars.get(i) == Some(&'^');
        if negated {
            i += 1;
        }
        let mut allowed = Vec::new();
        let mut excluded = Vec::new();
        loop {
            match chars.get(i) {
                None => panic!("unterminated character class in pattern {pattern:?}"),
                Some(']') => {
                    i += 1;
                    break;
                }
                Some('&') if chars.get(i + 1) == Some(&'&') => {
                    // `&&[^...]`: subtract the nested negated class.
                    assert!(
                        chars.get(i + 2) == Some(&'[') && chars.get(i + 3) == Some(&'^'),
                        "only `&&[^...]` subtraction is supported in pattern {pattern:?}"
                    );
                    let (inner, next) = parse_class(chars, i + 3, pattern);
                    match inner {
                        Atom::Class {
                            allowed: inner_set,
                            negated: true,
                        } => excluded.extend(inner_set),
                        _ => unreachable!("nested class starts with ^"),
                    }
                    i = next;
                    // The subtraction must close the outer class.
                    assert!(
                        chars.get(i) == Some(&']'),
                        "`&&[^...]` must end the class in pattern {pattern:?}"
                    );
                    i += 1;
                    break;
                }
                Some(&c) => {
                    let lo = if c == '\\' {
                        i += 1;
                        unescape(*chars.get(i).unwrap_or_else(|| {
                            panic!("dangling escape in pattern {pattern:?}")
                        }))
                    } else {
                        c
                    };
                    i += 1;
                    // `a-z` range, unless `-` is the final char before `]`.
                    if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
                        i += 1;
                        let hi_c = chars[i];
                        let hi = if hi_c == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            hi_c
                        };
                        i += 1;
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        for code in lo as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(code) {
                                allowed.push(ch);
                            }
                        }
                    } else {
                        allowed.push(lo);
                    }
                }
            }
        }
        allowed.retain(|c| !excluded.contains(c));
        (Atom::Class { allowed, negated }, i)
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u32, u32, usize) {
        match chars.get(i) {
            Some('*') => (0, OPEN_REP_MAX, i + 1),
            Some('+') => (1, OPEN_REP_MAX, i + 1),
            Some('?') => (0, 1, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{}} in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, "")) => (parse_num(lo, pattern), OPEN_REP_MAX),
                    Some((lo, hi)) => (parse_num(lo, pattern), parse_num(hi, pattern)),
                    None => {
                        let n = parse_num(&body, pattern);
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
                (min, max, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    fn parse_num(s: &str, pattern: &str) -> u32 {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier bound in pattern {pattern:?}"))
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0u8..5, 1..20)) {
///         prop_assert!(v.len() < 20);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::new(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                let case_seed = rng.next_u64();
                let mut case_rng = $crate::test_runner::TestRng::new(case_seed);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut case_rng);
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} (case seed {}): {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        case_seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{:?} != {:?}: {}",
                            l,
                            r,
                            format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
            }
        }
    };
}

/// A strategy choosing uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_expected_shapes() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let s = crate::string::generate_matching("[a-z0-9.]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));

            let p = crate::string::generate_matching("/[!-~&&[^\"\\\\]]{0,50}", &mut rng);
            assert!(p.starts_with('/'));
            assert!(p.chars().skip(1).all(|c| ('!'..='~').contains(&c) && c != '"' && c != '\\'),
                "{p:?}");

            let t = crate::string::generate_matching("[0-9A-Za-z/: +-]{0,30}", &mut rng);
            assert!(t.chars().all(|c| c.is_ascii_alphanumeric()
                || matches!(c, '/' | ':' | ' ' | '+' | '-')));
        }
    }

    #[test]
    fn ranges_respect_bounds_and_hit_edges() {
        let mut rng = TestRng::new(2);
        let strat = 5u32..10;
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((5..10).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi, "edge bias should hit both bounds");
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::new(3);
        let strat = crate::collection::vec(0u8..4, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(crate::test_runner::Config::with_cases(32))]

        #[test]
        fn self_test_macro_works(x in 1u64..100, v in crate::collection::vec(0u32..7, 1..5)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }
}
