//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the vendored serde's [`Value`] tree.
//! Covers `to_string`, `to_string_pretty`, `from_str`, and a flat `json!`
//! macro — the surface this workspace uses.

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] (used by [`json!`]).
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

/// Builds a [`Value`] from JSON-like syntax: `{"key": value, ...}` objects
/// (values may be nested objects/arrays or arbitrary serializable
/// expressions), `[value, ...]` arrays, `null`, and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => { $crate::__json_object!(@acc [] $($tt)*) };
    ([ $($tt:tt)* ]) => { $crate::__json_array!(@acc [] $($tt)*) };
    ($v:expr) => { $crate::to_value(&$v) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    // Nested object value.
    (@acc [$($entries:tt)*] $k:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::json!({ $($inner)* })),] $($rest)*)
    };
    (@acc [$($entries:tt)*] $k:literal : { $($inner:tt)* }) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::json!({ $($inner)* })),])
    };
    // Nested array value.
    (@acc [$($entries:tt)*] $k:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::json!([ $($inner)* ])),] $($rest)*)
    };
    (@acc [$($entries:tt)*] $k:literal : [ $($inner:tt)* ]) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::json!([ $($inner)* ])),])
    };
    // Null value.
    (@acc [$($entries:tt)*] $k:literal : null , $($rest:tt)*) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::Value::Null),] $($rest)*)
    };
    (@acc [$($entries:tt)*] $k:literal : null) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::Value::Null),])
    };
    // Expression value (no top-level comma in an expr, so this is safe).
    (@acc [$($entries:tt)*] $k:literal : $v:expr , $($rest:tt)*) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::to_value(&$v)),] $($rest)*)
    };
    (@acc [$($entries:tt)*] $k:literal : $v:expr) => {
        $crate::__json_object!(@acc [$($entries)* ($k, $crate::to_value(&$v)),])
    };
    // All pairs consumed.
    (@acc [$(($k:literal, $v:expr),)*]) => {
        $crate::Value::Object(vec![ $(($k.to_string(), $v)),* ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    (@acc [$($items:tt)*] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($items)* ($crate::json!({ $($inner)* })),] $($rest)*)
    };
    (@acc [$($items:tt)*] { $($inner:tt)* }) => {
        $crate::__json_array!(@acc [$($items)* ($crate::json!({ $($inner)* })),])
    };
    (@acc [$($items:tt)*] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($items)* ($crate::json!([ $($inner)* ])),] $($rest)*)
    };
    (@acc [$($items:tt)*] [ $($inner:tt)* ]) => {
        $crate::__json_array!(@acc [$($items)* ($crate::json!([ $($inner)* ])),])
    };
    (@acc [$($items:tt)*] null , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($items)* ($crate::Value::Null),] $($rest)*)
    };
    (@acc [$($items:tt)*] null) => {
        $crate::__json_array!(@acc [$($items)* ($crate::Value::Null),])
    };
    (@acc [$($items:tt)*] $v:expr , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($items)* ($crate::to_value(&$v)),] $($rest)*)
    };
    (@acc [$($items:tt)*] $v:expr) => {
        $crate::__json_array!(@acc [$($items)* ($crate::to_value(&$v)),])
    };
    (@acc [$(($v:expr),)*]) => {
        $crate::Value::Array(vec![ $($v),* ])
    };
}

// ------------------------------------------------------------------ writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null` behaviour.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(3)),
            ("b".to_string(), Value::Array(vec![Value::Int(-1), Value::Null])),
            ("c".to_string(), Value::Str("x\"y\n".to_string())),
            ("d".to_string(), Value::Float(0.5)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_fraction_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn pretty_nests() {
        let v = json!({ "k": 1u32, "l": "s" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"k\": 1"));
    }
}
