//! Offline stand-in for `rand_distr` 0.4.
//!
//! Provides [`Normal`] and [`LogNormal`] over the vendored `rand`, sampled
//! via the Box–Muller transform — the only distributions this workspace uses.

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("standard deviation must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one uniform pair per sample keeps the RNG stream
        // consumption deterministic (no cached second value).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// A log-normal whose logarithm is `N(mu, sigma)`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let d = LogNormal::new(9.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "log-normal mean should exceed median");
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }
}
