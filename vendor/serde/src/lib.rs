//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a minimal serde replacement. Instead of real serde's streaming data
//! model, serialization converts through a JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] reconstructs a type from a [`Value`];
//! * the vendored `serde_json` renders/parses [`Value`] as JSON text.
//!
//! The derive macros (re-exported from the vendored `serde_derive`) cover
//! the shapes this workspace uses; `#[serde(...)]` attributes are not
//! supported. This is intentionally *not* a general serde replacement —
//! only the surface the pbppm crates exercise.

pub use serde_derive::{Deserialize as Deserialize, Serialize as Serialize};

/// A JSON-like value tree: the interchange format between [`SerializeTrait`]
/// and the vendored `serde_json`.
///
/// Objects preserve insertion order (derive order), so serialized output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    Int(i64),
    /// Unsigned integer (non-negative JSON numbers).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A short name for the value's kind (used in error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `name` in an object and deserializes it (derive helper).
pub fn object_field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

// --------------------------------------------------------------- primitives

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n).map_err(|_| DeError::new("integer out of range")),
                    Value::Int(n) if *n >= 0 => <$t>::try_from(*n as u64).map_err(|_| DeError::new("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n).map_err(|_| DeError::new("integer out of range")),
                    Value::UInt(n) => <$t>::try_from(*n).map_err(|_| DeError::new("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::new("array length mismatch"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}
