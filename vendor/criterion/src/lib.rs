//! Offline stand-in for `criterion` 0.5.
//!
//! Keeps the `criterion_group!`/`criterion_main!` interface and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` call surface, backed by a simple
//! wall-clock sampler: per benchmark it auto-sizes an iteration batch to
//! ~10 ms, takes `sample_size` samples, and prints min/median/max (plus
//! throughput when configured). No statistics beyond that, no HTML reports,
//! no baseline files.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration for one timed batch.
const TARGET_BATCH: Duration = Duration::from_millis(10);

/// Measurement configuration and sink.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }
}

/// Units of work per iteration, for derived throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Times `f` under `<group>/<name>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        run_benchmark(&id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Times `f(bencher, input)` under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_benchmark(&name, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (flush point; nothing buffered here).
    pub fn finish(self) {}
}

/// Handed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    calibrated: bool,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            iters_per_sample: 1,
            samples: Vec::with_capacity(sample_size),
            sample_size,
            calibrated: false,
        }
    }

    /// Times `routine`, auto-sizing the batch so one sample takes ~10 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: double the batch until it is long enough to time.
        if !self.calibrated {
            loop {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= TARGET_BATCH || self.iters_per_sample >= 1 << 30 {
                    break;
                }
                self.iters_per_sample = if elapsed.is_zero() {
                    self.iters_per_sample * 8
                } else {
                    // Scale straight to the target, with headroom.
                    let scale = TARGET_BATCH.as_nanos() as f64 / elapsed.as_nanos() as f64;
                    (self.iters_per_sample as f64 * scale.clamp(1.5, 16.0)).ceil() as u64
                };
            }
            self.calibrated = true;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Setup cost is excluded by timing each call individually; batches
        // stay at one iteration per sample.
        self.iters_per_sample = 1;
        self.calibrated = true;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        self.calibrated = true;
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let iters = bencher.iters_per_sample;
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let median = per_iter[per_iter.len() / 2];
    print!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (median / 1e9);
        print!("  thrpt: {} {unit}", fmt_count(rate));
    }
    println!();
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3}K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Declares a group of benchmark functions, with optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); none are
            // meaningful to this stand-in, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("selftest");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| vec![n; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_all_forms() {
        let mut c = Criterion::default().sample_size(3);
        trivial_bench(&mut c);
        c.bench_function("bare", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(plain_group, trivial_bench);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(2);
        targets = trivial_bench
    }

    #[test]
    fn groups_execute() {
        plain_group();
        configured_group();
    }
}
