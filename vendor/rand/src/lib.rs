//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset this workspace uses: [`RngCore`]/[`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_bool`, `gen_range`), a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but do
//! NOT match upstream rand's byte-for-byte; nothing in this workspace depends
//! on upstream streams.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the RNG's uniform stream.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges drawable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random value methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn from the type's standard distribution
    /// (floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
